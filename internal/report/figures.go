package report

import (
	"fmt"
	"sort"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/restore"
	"parallellives/internal/stats"
)

// Figure3 is the timeout-sensitivity figure: the CDF of per-ASN activity
// gaps and the fraction of administrative lives with at most one
// operational life, as functions of the timeout.
type Figure3 struct {
	Points  []core.TimeoutSensitivity
	Chosen  int
	AtKnee  core.TimeoutSensitivity
	hasKnee bool
}

// BuildFigure3 sweeps the given timeouts; chosen marks the paper's 30.
func BuildFigure3(act *bgpscan.Activity, admin *core.AdminIndex, timeouts []int, chosen int) Figure3 {
	f := Figure3{Points: core.SweepTimeouts(act, admin, timeouts), Chosen: chosen}
	for _, p := range f.Points {
		if p.Timeout == chosen {
			f.AtKnee = p
			f.hasKnee = true
		}
	}
	return f
}

// Text renders the series.
func (f Figure3) Text() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		mark := ""
		if p.Timeout == f.Chosen {
			mark = "  <- chosen"
		}
		rows = append(rows, []string{
			itoa(p.Timeout), pct(p.GapFractionBelow), pct(p.AdminWithOneOrLessOpLives),
			itoa(p.OpLifetimes) + mark,
		})
	}
	return textTable("Figure 3: sensitivity to the BGP inactivity timeout",
		[]string{"Timeout (d)", "Gaps <= timeout", "Adm lives w/ <=1 op life", "Op lifetimes"}, rows)
}

// Figure4 is the daily alive-count figure (and its Figure 13 single-axis
// variant): per-RIR and overall administrative vs operational series,
// down-sampled to the requested stride.
type Figure4 struct {
	Days      []dates.Day
	Admin     [asn.NumRIRs][]int
	Op        [asn.NumRIRs][]int
	AdminAll  []int
	OpAll     []int
	Crossover struct {
		// AdminRIPEOverARIN / OpRIPEOverARIN are the first sampled days
		// on which RIPE NCC exceeds ARIN in each dimension (§5's 2012 vs
		// 2009 finding); None when it never happens.
		Admin dates.Day
		Op    dates.Day
	}
	// EndGap is the final-day fraction of allocated ASNs not
	// operationally alive (§5's "almost 28%").
	EndGap float64
}

// BuildFigure4 samples the alive series every stride days.
func BuildFigure4(j *core.Joint, start, end dates.Day, stride int) Figure4 {
	return BuildFigure4FromSeries(j.Alive(start, end), stride)
}

// BuildFigure4FromSeries builds the figure from an already-computed alive
// series — the path the query service takes when serving a snapshot, where
// the series is stored rather than recomputed from lifetimes.
func BuildFigure4FromSeries(s *core.AliveSeries, stride int) Figure4 {
	sample := SampleAlive(s, stride)
	f := Figure4{
		Days:     sample.Days,
		Admin:    sample.Admin,
		Op:       sample.Op,
		AdminAll: sample.AdminAll,
		OpAll:    sample.OpAll,
	}
	f.Crossover.Admin = dates.None
	f.Crossover.Op = dates.None
	for i, d := range sample.Days {
		if f.Crossover.Admin == dates.None &&
			sample.Admin[asn.RIPENCC][i] > sample.Admin[asn.ARIN][i] {
			f.Crossover.Admin = d
		}
		if f.Crossover.Op == dates.None &&
			sample.Op[asn.RIPENCC][i] > sample.Op[asn.ARIN][i] {
			f.Crossover.Op = d
		}
	}
	last := len(s.AdminOverall) - 1
	if last >= 0 && s.AdminOverall[last] > 0 {
		f.EndGap = 1 - float64(s.OpOverall[last])/float64(s.AdminOverall[last])
	}
	return f
}

// Text renders the sampled series.
func (f Figure4) Text() string {
	var b strings.Builder
	header := []string{"Date"}
	for _, r := range asn.All() {
		header = append(header, r.String(), r.String()+" BGP")
	}
	header = append(header, "Overall", "Overall BGP")
	rows := make([][]string, 0, len(f.Days))
	for i, d := range f.Days {
		row := []string{d.String()}
		for _, r := range asn.All() {
			row = append(row, itoa(f.Admin[r][i]), itoa(f.Op[r][i]))
		}
		row = append(row, itoa(f.AdminAll[i]), itoa(f.OpAll[i]))
		rows = append(rows, row)
	}
	b.WriteString(textTable("Figure 4: administratively vs operationally alive ASNs per day", header, rows))
	fmt.Fprintf(&b, "RIPE NCC surpasses ARIN: admin %s, BGP %s\n",
		f.Crossover.Admin, f.Crossover.Op)
	fmt.Fprintf(&b, "final-day allocated-but-not-in-BGP gap: %s\n", pct(f.EndGap))
	return b.String()
}

// Figure5 is the per-RIR CDF of administrative lifetime durations.
type Figure5 struct {
	CDFs [asn.NumRIRs]*stats.CDF
	// Over5y / Over10y / Under1y summarize the fractions §5 quotes.
	Over5y, Over10y, Under1y [asn.NumRIRs]float64
}

// BuildFigure5 computes the duration CDFs.
func BuildFigure5(admin *core.AdminIndex) Figure5 {
	var per [asn.NumRIRs][]int
	for _, al := range admin.Lifetimes {
		per[al.RIR] = append(per[al.RIR], al.Span.Days())
	}
	var f Figure5
	for _, r := range asn.All() {
		f.CDFs[r] = stats.NewCDFInts(per[r])
		n := f.CDFs[r].N()
		if n == 0 {
			continue
		}
		f.Over5y[r] = 1 - f.CDFs[r].At(5*365)
		f.Over10y[r] = 1 - f.CDFs[r].At(10*365)
		f.Under1y[r] = f.CDFs[r].At(364)
	}
	return f
}

// Text renders the summary quantiles.
func (f Figure5) Text() string {
	rows := make([][]string, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		c := f.CDFs[r]
		med := "-"
		if c.N() > 0 {
			med = fday(c.Median())
		}
		rows = append(rows, []string{
			r.String(), itoa(c.N()), med,
			pct(f.Under1y[r]), pct(f.Over5y[r]), pct(f.Over10y[r]),
		})
	}
	return textTable("Figure 5: CDF of administrative lifetime durations per RIR",
		[]string{"RIR", "Lives", "Median", "<1y", ">5y", ">10y"}, rows)
}

// Figure7 is the utilization CDF of complete-overlap admin lives.
type Figure7 struct {
	CDF *stats.CDF
	// Over75, Over95, Under30 reproduce §6.1.1's cut points.
	Over75, Over95, Under30 float64
}

// BuildFigure7 computes the utilization CDF.
func BuildFigure7(j *core.Joint) Figure7 {
	u := j.Utilization()
	c := stats.NewCDF(u)
	f := Figure7{CDF: c}
	if c.N() > 0 {
		f.Over75 = 1 - c.At(0.75)
		f.Over95 = 1 - c.At(0.95)
		f.Under30 = c.At(0.30)
	}
	return f
}

// Text renders the summary.
func (f Figure7) Text() string {
	rows := [][]string{{
		itoa(f.CDF.N()), pct(f.Over75), pct(f.Over95), pct(f.Under30),
	}}
	return textTable("Figure 7: utilization of complete-overlap administrative lives",
		[]string{"Lives", "usage > 75%", "usage > 95%", "usage < 30%"}, rows)
}

// Figure8 is the dormant-squat prefix-count figure: daily origination
// series for the flagged ASNs with the largest spikes.
type Figure8 struct {
	Start, End dates.Day
	Series     []Figure8Series
	// SharedUpstreamGroups counts coordinated groups (same dominant
	// upstream across multiple flagged ASNs).
	SharedUpstreamGroups int
}

// Figure8Series is one ASN's daily prefix-count series (sampled).
type Figure8Series struct {
	ASN         asn.ASN
	Peak        int
	WakeSpan    intervals.Interval
	DormantDays int
	Days        []dates.Day
	Counts      []int
	Upstream    asn.ASN
}

// BuildFigure8 selects the top flagged squats by prefix spike.
func BuildFigure8(j *core.Joint, findings []core.SquatFinding, topN, stride int, start, end dates.Day) Figure8 {
	f := Figure8{Start: start, End: end}
	sorted := make([]core.SquatFinding, len(findings))
	copy(sorted, findings)
	sort.Slice(sorted, func(i, k int) bool {
		if sorted[i].PeakPrefixCount != sorted[k].PeakPrefixCount {
			return sorted[i].PeakPrefixCount > sorted[k].PeakPrefixCount
		}
		return sorted[i].ASN < sorted[k].ASN
	})
	seen := map[asn.ASN]bool{}
	for _, fd := range sorted {
		if len(f.Series) >= topN {
			break
		}
		if seen[fd.ASN] {
			continue
		}
		seen[fd.ASN] = true
		series := j.PrefixSeries(fd.ASN, start, end)
		s := Figure8Series{ASN: fd.ASN, Peak: fd.PeakPrefixCount,
			WakeSpan: fd.OpSpan, DormantDays: fd.DormantDays}
		if len(fd.Upstreams) > 0 {
			s.Upstream = fd.Upstreams[0]
		}
		for off := 0; off < len(series); off += stride {
			s.Days = append(s.Days, start.AddDays(off))
			s.Counts = append(s.Counts, series[off])
		}
		f.Series = append(f.Series, s)
	}
	f.SharedUpstreamGroups = len(core.CoordinatedGroups(findings, 2))
	return f
}

// Text renders peak rows (the full series is available in the struct).
func (f Figure8) Text() string {
	rows := make([][]string, 0, len(f.Series))
	for _, s := range f.Series {
		rows = append(rows, []string{
			"AS" + s.ASN.String(), itoa(s.Peak),
			s.WakeSpan.Start.String(), s.WakeSpan.End.String(),
			itoa(s.DormantDays), "AS" + s.Upstream.String(),
		})
	}
	out := textTable("Figure 8: prefixes originated by awakening dormant ASNs",
		[]string{"ASN", "Peak prefixes/day", "Wake", "Sleep", "Dormant days", "Main upstream"}, rows)
	return out + fmt.Sprintf("coordinated groups sharing an upstream: %d\n", f.SharedUpstreamGroups)
}

// Figure9 is the per-RIR CDF of unused administrative life durations.
type Figure9 struct {
	CDFs [asn.NumRIRs]*stats.CDF
	// Under1y reproduces §6.3's "only 14.9% (ARIN) … 45% (LACNIC)".
	Under1y [asn.NumRIRs]float64
}

// BuildFigure9 computes the unused-life duration CDFs.
func BuildFigure9(unused core.UnusedProfile) Figure9 {
	var f Figure9
	for _, r := range asn.All() {
		f.CDFs[r] = stats.NewCDFInts(unused.DurationsByRIR[r])
		if f.CDFs[r].N() > 0 {
			f.Under1y[r] = f.CDFs[r].At(364)
		}
	}
	return f
}

// Text renders the summary.
func (f Figure9) Text() string {
	rows := make([][]string, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		c := f.CDFs[r]
		med := "-"
		if c.N() > 0 {
			med = fday(c.Median())
		}
		rows = append(rows, []string{r.String(), itoa(c.N()), med, pct(f.Under1y[r])})
	}
	return textTable("Figure 9: duration of never-used administrative lives",
		[]string{"RIR", "Unused lives", "Median", "<1y"}, rows)
}

// Figure10 is the quarterly administrative birth rate per RIR.
type Figure10 struct {
	Quarters []int // absolute quarter index
	Births   [asn.NumRIRs][]int
}

// BuildFigure10 bins lifetime registration dates into quarters.
func BuildFigure10(admin *core.AdminIndex) Figure10 {
	var f Figure10
	if len(admin.Lifetimes) == 0 {
		return f
	}
	minQ, maxQ := 1<<30, -(1 << 30)
	for _, al := range admin.Lifetimes {
		if al.RegDate == dates.None {
			continue
		}
		q := al.RegDate.Quarter()
		if q < minQ {
			minQ = q
		}
		if q > maxQ {
			maxQ = q
		}
	}
	if minQ > maxQ {
		return f
	}
	n := maxQ - minQ + 1
	for r := range f.Births {
		f.Births[r] = make([]int, n)
	}
	for q := minQ; q <= maxQ; q++ {
		f.Quarters = append(f.Quarters, q)
	}
	for _, al := range admin.Lifetimes {
		if al.RegDate == dates.None {
			continue
		}
		f.Births[al.RIR][al.RegDate.Quarter()-minQ]++
	}
	return f
}

// PeakQuarter returns the quarter with the most births for a registry.
func (f Figure10) PeakQuarter(r asn.RIR) (dates.Day, int) {
	best, bestN := dates.None, -1
	for i, q := range f.Quarters {
		if f.Births[r][i] > bestN {
			bestN = f.Births[r][i]
			best = dates.QuarterStart(q)
		}
	}
	return best, bestN
}

// Text renders yearly aggregates (quarterly data lives in the struct).
func (f Figure10) Text() string {
	return renderQuarterSeries("Figure 10: per-RIR administrative birth rate (3-month bins)",
		f.Quarters, func(r asn.RIR, i int) int { return f.Births[r][i] })
}

// Figure11 is the quarterly births-minus-deaths balance per RIR.
type Figure11 struct {
	Quarters []int
	Balance  [asn.NumRIRs][]int
}

// BuildFigure11 bins lifetime starts and ends within the window.
func BuildFigure11(admin *core.AdminIndex, start, end dates.Day) Figure11 {
	var f Figure11
	minQ, maxQ := start.Quarter(), end.Quarter()
	n := maxQ - minQ + 1
	for r := range f.Balance {
		f.Balance[r] = make([]int, n)
	}
	for q := minQ; q <= maxQ; q++ {
		f.Quarters = append(f.Quarters, q)
	}
	for _, al := range admin.Lifetimes {
		if al.Span.Start >= start && al.Span.Start <= end {
			f.Balance[al.RIR][al.Span.Start.Quarter()-minQ]++
		}
		if !al.Open && al.Span.End >= start && al.Span.End <= end {
			f.Balance[al.RIR][al.Span.End.Quarter()-minQ]--
		}
	}
	return f
}

// Text renders the series.
func (f Figure11) Text() string {
	return renderQuarterSeries("Figure 11: balance between new allocations and deaths (3-month bins)",
		f.Quarters, func(r asn.RIR, i int) int { return f.Balance[r][i] })
}

func renderQuarterSeries(title string, quarters []int, val func(asn.RIR, int) int) string {
	header := []string{"Quarter"}
	for _, r := range asn.All() {
		header = append(header, r.String())
	}
	rows := make([][]string, 0, len(quarters))
	for i, q := range quarters {
		row := []string{dates.QuarterStart(q).String()}
		for _, r := range asn.All() {
			row = append(row, itoa(val(r, i)))
		}
		rows = append(rows, row)
	}
	return textTable(title, header, rows)
}

// Figure12 is the daily 16- vs 32-bit allocated counts per RIR, sampled.
type Figure12 struct {
	Days  []dates.Day
	Bit16 [asn.NumRIRs][]int
	Bit32 [asn.NumRIRs][]int
}

// BuildFigure12 counts delegated runs by AS-number width.
func BuildFigure12(res *restore.Result, start, end dates.Day, stride int) Figure12 {
	var f Figure12
	n := end.Sub(start) + 1
	var full16, full32 [asn.NumRIRs][]int
	for r := range full16 {
		full16[r] = make([]int, n)
		full32[r] = make([]int, n)
	}
	for _, run := range res.Runs {
		if !run.Delegated() {
			continue
		}
		lo := dates.Max(run.Span.Start, start)
		hi := dates.Min(run.Span.End, end)
		series := full16[run.RIR]
		if run.ASN.Is32Bit() {
			series = full32[run.RIR]
		}
		for d := lo; d <= hi; d++ {
			series[d.Sub(start)]++
		}
	}
	for off := 0; off < n; off += stride {
		f.Days = append(f.Days, start.AddDays(off))
		for _, r := range asn.All() {
			f.Bit16[r] = append(f.Bit16[r], full16[r][off])
			f.Bit32[r] = append(f.Bit32[r], full32[r][off])
		}
	}
	return f
}

// Text renders the sampled series.
func (f Figure12) Text() string {
	header := []string{"Date"}
	for _, r := range asn.All() {
		header = append(header, r.String()+"_16", r.String()+"_32")
	}
	rows := make([][]string, 0, len(f.Days))
	for i, d := range f.Days {
		row := []string{d.String()}
		for _, r := range asn.All() {
			row = append(row, itoa(f.Bit16[r][i]), itoa(f.Bit32[r][i]))
		}
		rows = append(rows, row)
	}
	return textTable("Figure 12: 16-bit vs 32-bit allocated ASNs per day", header, rows)
}

// Figure14 is the life-duration-by-birth-year boxplot data.
type Figure14 struct {
	// Boxes[(rir, year)] in row order: one row per (year, rir) with
	// allocations.
	Rows []Figure14Row
}

// Figure14Row is one (registry, birth year) boxplot.
type Figure14Row struct {
	RIR      asn.RIR
	Year     int
	Duration stats.FiveNum
	Births   int
}

// BuildFigure14 computes per-(RIR, birth-year) duration summaries for
// lifetimes starting inside [startYear, endYear].
func BuildFigure14(admin *core.AdminIndex, startYear, endYear int) Figure14 {
	byKey := make(map[[2]int][]int)
	for _, al := range admin.Lifetimes {
		y := al.Span.Start.Year()
		if y < startYear || y > endYear {
			continue
		}
		k := [2]int{y, int(al.RIR)}
		byKey[k] = append(byKey[k], al.Span.Days())
	}
	var f Figure14
	for y := startYear; y <= endYear; y++ {
		for _, r := range asn.All() {
			durs := byKey[[2]int{y, int(r)}]
			if len(durs) == 0 {
				continue
			}
			f.Rows = append(f.Rows, Figure14Row{
				RIR: r, Year: y,
				Duration: stats.SummaryInts(durs),
				Births:   len(durs),
			})
		}
	}
	return f
}

// Text renders the boxplot rows.
func (f Figure14) Text() string {
	rows := make([][]string, 0, len(f.Rows))
	for _, r := range f.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%s_%d", r.RIR.Token(), r.Year),
			itoa(r.Births),
			fday(r.Duration.Min), fday(r.Duration.Q1), fday(r.Duration.Median),
			fday(r.Duration.Q3), fday(r.Duration.Max),
		})
	}
	return textTable("Figure 14: administrative life duration by birth year per RIR",
		[]string{"RIR_year", "Births", "Min", "Q1", "Median", "Q3", "Max"}, rows)
}
