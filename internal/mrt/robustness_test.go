package mrt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"testing"
)

// TestReaderSurvivesRandomCorruption mutates a valid archive at random
// positions and asserts the reader never panics and always terminates
// with EOF or an error.
func TestReaderSurvivesRandomCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tbl := PeerIndexTable{ViewName: "v", Peers: []Peer{
		{Addr: netip.MustParseAddr("192.0.2.1"), AS: 3356},
		{Addr: netip.MustParseAddr("2001:db8::1"), AS: 6939},
	}}
	if err := w.WriteRecord(1, TypeTableDumpV2, SubtypePeerIndexTable, tbl.Marshal()); err != nil {
		t.Fatal(err)
	}
	rec := RIBRecord{Prefix: netip.MustParsePrefix("203.0.113.0/24"),
		Entries: []RIBEntry{{PeerIndex: 0, Attrs: []byte{0x40, 1, 1, 0}}}}
	for i := 0; i < 20; i++ {
		rec.Seq = uint32(i)
		if err := w.WriteRecord(uint32(i), TypeTableDumpV2, SubtypeRIBIPv4Unicast, rec.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	clean := buf.Bytes()

	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), clean...)
		for k := 0; k < 1+r.Intn(6); k++ {
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		}
		if r.Intn(3) == 0 {
			data = data[:r.Intn(len(data))]
		}
		reader := NewReader(bytes.NewReader(data))
		var tblGot PeerIndexTable
		var recGot RIBRecord
		for records := 0; records < 1000; records++ {
			h, body, err := reader.Next()
			if errors.Is(err, io.EOF) || err != nil && !errors.Is(err, io.EOF) {
				break
			}
			switch {
			case h.Type == TypeTableDumpV2 && h.Subtype == SubtypePeerIndexTable:
				_ = DecodePeerIndexTable(&tblGot, body)
			case h.Type == TypeTableDumpV2 && h.Subtype == SubtypeRIBIPv4Unicast:
				_ = DecodeRIBRecord(&recGot, body, false)
			}
		}
	}
}
