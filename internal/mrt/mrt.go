// Package mrt implements the MRT routing-information export format
// (RFC 6396) used by the RouteViews and RIPE RIS archives: the common
// record framing, TABLE_DUMP_V2 RIB dumps (PEER_INDEX_TABLE and
// RIB_IPV4/IPV6_UNICAST records), and BGP4MP update messages with 2- and
// 4-octet AS numbers.
//
// The Reader follows the guide's preallocated-decoding idiom: Next
// returns the record body in an internal buffer that is reused across
// calls, so streaming a multi-gigabyte archive performs a bounded number
// of allocations.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
)

// Type is an MRT record type.
type Type uint16

// MRT record types used by BGP archives.
const (
	TypeTableDumpV2 Type = 13
	TypeBGP4MP      Type = 16
	TypeBGP4MPET    Type = 17
)

// TABLE_DUMP_V2 subtypes.
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// BGP4MP subtypes.
const (
	SubtypeBGP4MPStateChange uint16 = 0
	SubtypeBGP4MPMessage     uint16 = 1
	SubtypeBGP4MPMessageAS4  uint16 = 4
)

const headerLen = 12

// ErrTruncated reports a record body shorter than its framing declares.
var ErrTruncated = errors.New("mrt: truncated record")

// ErrMalformed reports structurally invalid record contents.
var ErrMalformed = errors.New("mrt: malformed record")

// Header is the common MRT record header.
type Header struct {
	Timestamp uint32 // seconds since the Unix epoch
	Type      Type
	Subtype   uint16
	Length    uint32 // body length in bytes
}

// Reader streams MRT records from an io.Reader.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps r in an MRT record reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// maxRecordLen bounds a single record body; real archives stay far below
// this, and the cap prevents a corrupted length field from ballooning the
// reusable buffer.
const maxRecordLen = 1 << 24

// Next returns the next record's header and body. The body slice aliases
// an internal buffer that is overwritten by the following Next call; it
// returns io.EOF cleanly at end of stream.
func (r *Reader) Next() (Header, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, nil, ErrTruncated
		}
		return Header{}, nil, err
	}
	h := Header{
		Timestamp: binary.BigEndian.Uint32(hdr[0:4]),
		Type:      Type(binary.BigEndian.Uint16(hdr[4:6])),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
		Length:    binary.BigEndian.Uint32(hdr[8:12]),
	}
	if h.Length > maxRecordLen {
		return Header{}, nil, fmt.Errorf("%w: record length %d", ErrMalformed, h.Length)
	}
	if cap(r.buf) < int(h.Length) {
		r.buf = make([]byte, h.Length)
	}
	body := r.buf[:h.Length]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return Header{}, nil, ErrTruncated
	}
	return h, body, nil
}

// Writer emits MRT records to an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w in an MRT record writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteRecord frames body with the MRT header and writes it.
func (w *Writer) WriteRecord(ts uint32, typ Type, subtype uint16, body []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint32(w.buf, ts)
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(typ))
	w.buf = binary.BigEndian.AppendUint16(w.buf, subtype)
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = append(w.buf, body...)
	_, err := w.w.Write(w.buf)
	return err
}

// Peer is one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID [4]byte
	Addr  netip.Addr
	AS    asn.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 PEER_INDEX_TABLE record that
// prefixes every RIB dump and maps peer indexes to peer identities.
type PeerIndexTable struct {
	CollectorID [4]byte
	ViewName    string
	Peers       []Peer
}

// Marshal encodes the peer index table body.
func (t *PeerIndexTable) Marshal() []byte {
	var b []byte
	b = append(b, t.CollectorID[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(t.ViewName)))
	b = append(b, t.ViewName...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var ptype byte
		if p.Addr.Is6() && !p.Addr.Is4In6() {
			ptype |= 0x01
		}
		ptype |= 0x02 // always record 4-byte AS, like modern collectors
		b = append(b, ptype)
		b = append(b, p.BGPID[:]...)
		if ptype&0x01 != 0 {
			a := p.Addr.As16()
			b = append(b, a[:]...)
		} else {
			a := p.Addr.As4()
			b = append(b, a[:]...)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(p.AS))
	}
	return b
}

// DecodePeerIndexTable parses a PEER_INDEX_TABLE body into t.
func DecodePeerIndexTable(t *PeerIndexTable, b []byte) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	copy(t.CollectorID[:], b[:4])
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return ErrTruncated
	}
	t.ViewName = string(b[:nameLen])
	count := int(binary.BigEndian.Uint16(b[nameLen : nameLen+2]))
	b = b[nameLen+2:]
	t.Peers = t.Peers[:0]
	for i := 0; i < count; i++ {
		if len(b) < 1 {
			return ErrTruncated
		}
		ptype := b[0]
		b = b[1:]
		var p Peer
		if len(b) < 4 {
			return ErrTruncated
		}
		copy(p.BGPID[:], b[:4])
		b = b[4:]
		if ptype&0x01 != 0 {
			if len(b) < 16 {
				return ErrTruncated
			}
			p.Addr = netip.AddrFrom16([16]byte(b[:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return ErrTruncated
			}
			p.Addr = netip.AddrFrom4([4]byte(b[:4]))
			b = b[4:]
		}
		if ptype&0x02 != 0 {
			if len(b) < 4 {
				return ErrTruncated
			}
			p.AS = asn.ASN(binary.BigEndian.Uint32(b[:4]))
			b = b[4:]
		} else {
			if len(b) < 2 {
				return ErrTruncated
			}
			p.AS = asn.ASN(binary.BigEndian.Uint16(b[:2]))
			b = b[2:]
		}
		t.Peers = append(t.Peers, p)
	}
	return nil
}

// RIBEntry is one peer's view of a prefix in a RIB record. Attrs is the
// raw BGP path-attribute block (4-octet AS encoding per RFC 6396 §4.3.4).
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime uint32
	Attrs          []byte
}

// RIBRecord is a TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record:
// one prefix with the set of peers announcing it.
type RIBRecord struct {
	Seq     uint32
	Prefix  netip.Prefix
	Entries []RIBEntry
}

// Subtype returns the TABLE_DUMP_V2 subtype matching the record's
// address family.
func (r *RIBRecord) Subtype() uint16 {
	if r.Prefix.Addr().Is6() && !r.Prefix.Addr().Is4In6() {
		return SubtypeRIBIPv6Unicast
	}
	return SubtypeRIBIPv4Unicast
}

// Marshal encodes the RIB record body.
func (r *RIBRecord) Marshal() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	bits := r.Prefix.Bits()
	b = append(b, byte(bits))
	addr := r.Prefix.Addr().AsSlice()
	b = append(b, addr[:(bits+7)/8]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		b = binary.BigEndian.AppendUint16(b, e.PeerIndex)
		b = binary.BigEndian.AppendUint32(b, e.OriginatedTime)
		b = binary.BigEndian.AppendUint16(b, uint16(len(e.Attrs)))
		b = append(b, e.Attrs...)
	}
	return b
}

// DecodeRIBRecord parses a RIB record body into r. v6 selects the address
// family, which the caller knows from the record subtype. Entry Attrs
// alias b.
func DecodeRIBRecord(r *RIBRecord, b []byte, v6 bool) error {
	if len(b) < 5 {
		return ErrTruncated
	}
	r.Seq = binary.BigEndian.Uint32(b[:4])
	bits := int(b[4])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return fmt.Errorf("%w: prefix length %d", ErrMalformed, bits)
	}
	nbytes := (bits + 7) / 8
	b = b[5:]
	if len(b) < nbytes+2 {
		return ErrTruncated
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], b[:nbytes])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], b[:nbytes])
		addr = netip.AddrFrom4(a)
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	r.Prefix = p
	count := int(binary.BigEndian.Uint16(b[nbytes : nbytes+2]))
	b = b[nbytes+2:]
	r.Entries = r.Entries[:0]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return ErrTruncated
		}
		e := RIBEntry{
			PeerIndex:      binary.BigEndian.Uint16(b[:2]),
			OriginatedTime: binary.BigEndian.Uint32(b[2:6]),
		}
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		b = b[8:]
		if len(b) < alen {
			return ErrTruncated
		}
		e.Attrs = b[:alen]
		b = b[alen:]
		r.Entries = append(r.Entries, e)
	}
	return nil
}

// BGP4MPMessage is a BGP4MP MESSAGE or MESSAGE_AS4 record: one BGP
// message exchanged between a collector and a peer.
type BGP4MPMessage struct {
	PeerAS, LocalAS asn.ASN
	IfIndex         uint16
	PeerIP, LocalIP netip.Addr
	Data            []byte // full BGP message, header included
	FourByte        bool   // true for the MESSAGE_AS4 subtype
}

// Subtype returns the BGP4MP subtype for the message's AS-number width.
func (m *BGP4MPMessage) Subtype() uint16 {
	if m.FourByte {
		return SubtypeBGP4MPMessageAS4
	}
	return SubtypeBGP4MPMessage
}

// Marshal encodes the BGP4MP message body.
func (m *BGP4MPMessage) Marshal() ([]byte, error) {
	var b []byte
	if m.FourByte {
		b = binary.BigEndian.AppendUint32(b, uint32(m.PeerAS))
		b = binary.BigEndian.AppendUint32(b, uint32(m.LocalAS))
	} else {
		if m.PeerAS.Is32Bit() || m.LocalAS.Is32Bit() {
			return nil, fmt.Errorf("%w: 32-bit ASN in 2-byte BGP4MP message", ErrMalformed)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(m.PeerAS))
		b = binary.BigEndian.AppendUint16(b, uint16(m.LocalAS))
	}
	b = binary.BigEndian.AppendUint16(b, m.IfIndex)
	v6 := m.PeerIP.Is6() && !m.PeerIP.Is4In6()
	if v6 {
		b = binary.BigEndian.AppendUint16(b, bgp.AFIIPv6)
		p, l := m.PeerIP.As16(), m.LocalIP.As16()
		b = append(b, p[:]...)
		b = append(b, l[:]...)
	} else {
		b = binary.BigEndian.AppendUint16(b, bgp.AFIIPv4)
		p, l := m.PeerIP.As4(), m.LocalIP.As4()
		b = append(b, p[:]...)
		b = append(b, l[:]...)
	}
	return append(b, m.Data...), nil
}

// DecodeBGP4MPMessage parses a BGP4MP MESSAGE / MESSAGE_AS4 body into m
// according to subtype. Data aliases b.
func DecodeBGP4MPMessage(m *BGP4MPMessage, b []byte, subtype uint16) error {
	m.FourByte = subtype == SubtypeBGP4MPMessageAS4
	asWidth := 2
	if m.FourByte {
		asWidth = 4
	}
	need := 2*asWidth + 4
	if len(b) < need {
		return ErrTruncated
	}
	if m.FourByte {
		m.PeerAS = asn.ASN(binary.BigEndian.Uint32(b[0:4]))
		m.LocalAS = asn.ASN(binary.BigEndian.Uint32(b[4:8]))
	} else {
		m.PeerAS = asn.ASN(binary.BigEndian.Uint16(b[0:2]))
		m.LocalAS = asn.ASN(binary.BigEndian.Uint16(b[2:4]))
	}
	b = b[2*asWidth:]
	m.IfIndex = binary.BigEndian.Uint16(b[0:2])
	afi := binary.BigEndian.Uint16(b[2:4])
	b = b[4:]
	switch afi {
	case bgp.AFIIPv4:
		if len(b) < 8 {
			return ErrTruncated
		}
		m.PeerIP = netip.AddrFrom4([4]byte(b[0:4]))
		m.LocalIP = netip.AddrFrom4([4]byte(b[4:8]))
		b = b[8:]
	case bgp.AFIIPv6:
		if len(b) < 32 {
			return ErrTruncated
		}
		m.PeerIP = netip.AddrFrom16([16]byte(b[0:16]))
		m.LocalIP = netip.AddrFrom16([16]byte(b[16:32]))
		b = b[32:]
	default:
		return fmt.Errorf("%w: AFI %d", ErrMalformed, afi)
	}
	m.Data = b
	return nil
}
