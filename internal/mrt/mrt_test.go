package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
)

func TestRecordFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bodies := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{0xab}, 1000),
	}
	for i, b := range bodies {
		if err := w.WriteRecord(uint32(1000+i), TypeBGP4MP, SubtypeBGP4MPMessageAS4, b); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range bodies {
		h, body, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if h.Timestamp != uint32(1000+i) || h.Type != TypeBGP4MP ||
			h.Subtype != SubtypeBGP4MPMessageAS4 || int(h.Length) != len(want) {
			t.Errorf("header %d = %+v", i, h)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("body %d mismatch", i)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(1, TypeBGP4MP, 1, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2] // chop the tail
	r := NewReader(bytes.NewReader(data))
	if _, _, err := r.Next(); err != ErrTruncated {
		t.Errorf("expected ErrTruncated, got %v", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, _, err := r.Next(); err != ErrTruncated {
		t.Errorf("expected ErrTruncated, got %v", err)
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	tbl := &PeerIndexTable{
		CollectorID: [4]byte{10, 0, 0, 1},
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: [4]byte{1, 1, 1, 1}, Addr: netip.MustParseAddr("192.0.2.1"), AS: 3356},
			{BGPID: [4]byte{2, 2, 2, 2}, Addr: netip.MustParseAddr("2001:db8::2"), AS: 4200000001},
			{BGPID: [4]byte{3, 3, 3, 3}, Addr: netip.MustParseAddr("198.51.100.7"), AS: 174},
		},
	}
	body := tbl.Marshal()
	var got PeerIndexTable
	if err := DecodePeerIndexTable(&got, body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, tbl) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *tbl)
	}
}

func TestPeerIndexTableTruncation(t *testing.T) {
	tbl := &PeerIndexTable{ViewName: "x", Peers: []Peer{
		{Addr: netip.MustParseAddr("192.0.2.1"), AS: 1},
	}}
	body := tbl.Marshal()
	var got PeerIndexTable
	for cut := 1; cut < len(body); cut++ {
		if err := DecodePeerIndexTable(&got, body[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func ribAttrs(t *testing.T, origin asn.ASN, hops ...asn.ASN) []byte {
	t.Helper()
	u := &bgp.Update{
		Path:      []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: append(hops, origin)}},
		NextHop:   netip.MustParseAddr("10.9.9.9"),
		HasOrigin: true,
	}
	return u.MarshalAttrs(true)
}

func TestRIBRecordRoundTripIPv4(t *testing.T) {
	rec := &RIBRecord{
		Seq:    42,
		Prefix: netip.MustParsePrefix("203.0.113.0/24"),
		Entries: []RIBEntry{
			{PeerIndex: 0, OriginatedTime: 1234, Attrs: ribAttrs(t, 64500, 3356)},
			{PeerIndex: 2, OriginatedTime: 1250, Attrs: ribAttrs(t, 64500, 174, 2914)},
		},
	}
	if rec.Subtype() != SubtypeRIBIPv4Unicast {
		t.Errorf("Subtype = %d", rec.Subtype())
	}
	body := rec.Marshal()
	var got RIBRecord
	if err := DecodeRIBRecord(&got, body, false); err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || got.Prefix != rec.Prefix || len(got.Entries) != 2 {
		t.Fatalf("got %+v", got)
	}
	// Attribute blocks must survive byte-for-byte and re-decode to the
	// same AS path.
	var u bgp.Update
	u.Reset()
	if err := bgp.DecodeAttrs(&u, got.Entries[1].Attrs, true); err != nil {
		t.Fatal(err)
	}
	o, ok := u.OriginAS()
	if !ok || o != 64500 {
		t.Errorf("origin = %v, %v", o, ok)
	}
	f, _ := u.FirstAS()
	if f != 174 {
		t.Errorf("first = %v", f)
	}
}

func TestRIBRecordRoundTripIPv6(t *testing.T) {
	rec := &RIBRecord{
		Seq:    7,
		Prefix: netip.MustParsePrefix("2001:db8:42::/48"),
		Entries: []RIBEntry{
			{PeerIndex: 1, OriginatedTime: 99, Attrs: ribAttrs(t, 4200000555, 6939)},
		},
	}
	if rec.Subtype() != SubtypeRIBIPv6Unicast {
		t.Errorf("Subtype = %d", rec.Subtype())
	}
	body := rec.Marshal()
	var got RIBRecord
	if err := DecodeRIBRecord(&got, body, true); err != nil {
		t.Fatal(err)
	}
	if got.Prefix != rec.Prefix {
		t.Errorf("Prefix = %v", got.Prefix)
	}
}

func TestRIBRecordBadPrefixLen(t *testing.T) {
	rec := &RIBRecord{Seq: 1, Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	body := rec.Marshal()
	body[4] = 64 // invalid for IPv4
	var got RIBRecord
	if err := DecodeRIBRecord(&got, body, false); err == nil {
		t.Error("expected error for /64 IPv4 prefix")
	}
}

func TestBGP4MPMessageRoundTrip(t *testing.T) {
	upd := &bgp.Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
		Path:      []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: []asn.ASN{3356, 64500}}},
		HasOrigin: true,
	}
	for _, fourByte := range []bool{false, true} {
		data, err := upd.Marshal(fourByte)
		if err != nil {
			t.Fatal(err)
		}
		m := &BGP4MPMessage{
			PeerAS: 3356, LocalAS: 65000, IfIndex: 3,
			PeerIP:  netip.MustParseAddr("192.0.2.9"),
			LocalIP: netip.MustParseAddr("192.0.2.10"),
			Data:    data, FourByte: fourByte,
		}
		body, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		var got BGP4MPMessage
		if err := DecodeBGP4MPMessage(&got, body, m.Subtype()); err != nil {
			t.Fatal(err)
		}
		if got.PeerAS != m.PeerAS || got.LocalAS != m.LocalAS || got.PeerIP != m.PeerIP ||
			got.LocalIP != m.LocalIP || got.IfIndex != m.IfIndex {
			t.Errorf("fourByte=%v: got %+v", fourByte, got)
		}
		var u bgp.Update
		if err := bgp.DecodeUpdate(&u, got.Data, fourByte); err != nil {
			t.Fatal(err)
		}
		if o, ok := u.OriginAS(); !ok || o != 64500 {
			t.Errorf("origin through MRT = %v, %v", o, ok)
		}
	}
}

func TestBGP4MPMessageIPv6Transport(t *testing.T) {
	m := &BGP4MPMessage{
		PeerAS: 4200000001, LocalAS: 65000,
		PeerIP:   netip.MustParseAddr("2001:db8::9"),
		LocalIP:  netip.MustParseAddr("2001:db8::a"),
		Data:     []byte{1, 2, 3},
		FourByte: true,
	}
	body, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got BGP4MPMessage
	if err := DecodeBGP4MPMessage(&got, body, m.Subtype()); err != nil {
		t.Fatal(err)
	}
	if got.PeerIP != m.PeerIP || got.LocalIP != m.LocalIP || !bytes.Equal(got.Data, m.Data) {
		t.Errorf("got %+v", got)
	}
}

func TestBGP4MPRejects32BitIn2ByteSubtype(t *testing.T) {
	m := &BGP4MPMessage{
		PeerAS: 4200000001, LocalAS: 65000,
		PeerIP:  netip.MustParseAddr("192.0.2.1"),
		LocalIP: netip.MustParseAddr("192.0.2.2"),
	}
	if _, err := m.Marshal(); err == nil {
		t.Error("expected error marshaling 32-bit AS in 2-byte subtype")
	}
}

func TestQuickRIBRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a [4]byte
		r.Read(a[:])
		bits := r.Intn(25)
		prefix, err := netip.AddrFrom4(a).Prefix(bits)
		if err != nil {
			return false
		}
		rec := &RIBRecord{Seq: r.Uint32(), Prefix: prefix}
		for i, n := 0, r.Intn(4); i < n; i++ {
			attrs := make([]byte, r.Intn(30))
			r.Read(attrs)
			rec.Entries = append(rec.Entries, RIBEntry{
				PeerIndex:      uint16(r.Intn(100)),
				OriginatedTime: r.Uint32(),
				Attrs:          attrs,
			})
		}
		var got RIBRecord
		if err := DecodeRIBRecord(&got, rec.Marshal(), false); err != nil {
			return false
		}
		if got.Seq != rec.Seq || got.Prefix != rec.Prefix || len(got.Entries) != len(rec.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i].PeerIndex != rec.Entries[i].PeerIndex ||
				got.Entries[i].OriginatedTime != rec.Entries[i].OriginatedTime ||
				!bytes.Equal(got.Entries[i].Attrs, rec.Entries[i].Attrs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickFramingRoundTrip(t *testing.T) {
	f := func(ts uint32, subtype uint16, body []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteRecord(ts, TypeTableDumpV2, subtype, body); err != nil {
			return false
		}
		h, got, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		return h.Timestamp == ts && h.Subtype == subtype && bytes.Equal(got, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
