package mrt

import (
	"bytes"
	"net/netip"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
)

func benchRIBBody(b *testing.B) []byte {
	b.Helper()
	u := &bgp.Update{
		Path: []bgp.Segment{{Type: bgp.SegmentSequence,
			ASNs: []asn.ASN{3356, 174, 64500}}},
		NextHop:   netip.MustParseAddr("192.0.2.1"),
		HasOrigin: true,
	}
	attrs := u.MarshalAttrs(true)
	rec := &RIBRecord{
		Seq:    1,
		Prefix: netip.MustParsePrefix("203.0.113.0/24"),
		Entries: []RIBEntry{
			{PeerIndex: 0, OriginatedTime: 1, Attrs: attrs},
			{PeerIndex: 1, OriginatedTime: 1, Attrs: attrs},
			{PeerIndex: 2, OriginatedTime: 1, Attrs: attrs},
			{PeerIndex: 3, OriginatedTime: 1, Attrs: attrs},
		},
	}
	return rec.Marshal()
}

func BenchmarkRIBRecordDecode(b *testing.B) {
	body := benchRIBBody(b)
	var rec RIBRecord
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		if err := DecodeRIBRecord(&rec, body, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRIBRecordEncode(b *testing.B) {
	body := benchRIBBody(b)
	var rec RIBRecord
	if err := DecodeRIBRecord(&rec, body, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rec.Marshal()
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	body := benchRIBBody(b)
	for i := 0; i < 1000; i++ {
		if err := w.WriteRecord(uint32(i), TypeTableDumpV2, SubtypeRIBIPv4Unicast, body); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			_, _, err := r.Next()
			if err != nil {
				break
			}
			n++
		}
		if n != 1000 {
			b.Fatalf("read %d records", n)
		}
	}
}
