package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"parallellives/internal/bgp"
)

// FuzzDecodeMRT drives the whole MRT decode surface — record framing,
// PEER_INDEX_TABLE, RIB records, BGP4MP messages and the nested BGP
// update parse — with arbitrary bytes. Nothing may panic: damaged
// archives must always surface as errors the quarantine layer can count.
func FuzzDecodeMRT(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not an mrt archive at all, just text"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var tbl PeerIndexTable
		var rib RIBRecord
		var msg BGP4MPMessage
		var upd bgp.Update
		for {
			h, body, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTruncated) &&
					!errors.Is(err, ErrMalformed) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("framing error of unknown class: %v", err)
				}
				return
			}
			switch h.Type {
			case TypeTableDumpV2:
				switch h.Subtype {
				case SubtypePeerIndexTable:
					_ = DecodePeerIndexTable(&tbl, body)
				case SubtypeRIBIPv4Unicast, SubtypeRIBIPv6Unicast:
					if DecodeRIBRecord(&rib, body, h.Subtype == SubtypeRIBIPv6Unicast) == nil {
						for _, e := range rib.Entries {
							upd.Reset()
							_ = bgp.DecodeAttrs(&upd, e.Attrs, true)
						}
					}
				}
			case TypeBGP4MP, TypeBGP4MPET:
				if h.Subtype != SubtypeBGP4MPMessage && h.Subtype != SubtypeBGP4MPMessageAS4 {
					continue
				}
				if DecodeBGP4MPMessage(&msg, body, h.Subtype) == nil {
					upd.Reset()
					_ = bgp.DecodeUpdate(&upd, msg.Data, msg.FourByte)
				}
			}
		}
	})
}
