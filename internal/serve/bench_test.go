package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"parallellives/internal/lifestore"
)

// BenchmarkServeTaxonomy measures the full handler path — mux dispatch,
// cache lookup, JSON render — for the hottest aggregate endpoint. With
// the default cache this is the hit path after the first iteration.
func BenchmarkServeTaxonomy(b *testing.B) {
	snap, _ := fixtures(b)
	srv := New(lifestore.NewInMemory(snap), Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/taxonomy", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServeASN measures a cache-missing single-ASN lookup from an
// opened snapshot, the lazy-decode path a cold cache pays.
func BenchmarkServeASN(b *testing.B) {
	snap, img := fixtures(b)
	st, err := lifestore.OpenBytes(img)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(st, Options{CacheSize: -1}) // disable the cache: measure the decode
	req := httptest.NewRequest(http.MethodGet, "/v1/asn/"+snap.Lives[0].ASN.String(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
