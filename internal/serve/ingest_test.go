package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"parallellives/internal/lifestore"
)

// TestHealthIngestHook pins the live-tail surface of /v1/health: when
// Options.Ingest is set its value renders under "ingest", polled fresh
// per request; without it the key is absent entirely.
func TestHealthIngestHook(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)

	type ingestStatus struct {
		Healthy       bool   `json:"healthy"`
		LastCommitted string `json:"last_committed_day"`
		LagDays       int    `json:"ingest_lag_days"`
	}
	cur := ingestStatus{Healthy: true, LastCommitted: "2005-12-30", LagDays: 1}
	srv := New(lifestore.NewInMemory(snap), Options{
		Ingest: func() any { return cur },
	})

	code, body := get(t, srv, "/v1/health")
	if code != http.StatusOK {
		t.Fatalf("health status = %d", code)
	}
	var resp struct {
		Ingest *ingestStatus `json:"ingest"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingest == nil || *resp.Ingest != cur {
		t.Fatalf("ingest = %+v, want %+v", resp.Ingest, cur)
	}

	// The hook is polled per request, not captured at startup.
	cur.LastCommitted, cur.LagDays = "2005-12-31", 0
	_, body = get(t, srv, "/v1/health")
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingest == nil || resp.Ingest.LagDays != 0 || resp.Ingest.LastCommitted != "2005-12-31" {
		t.Fatalf("second poll ingest = %+v, want the updated status", resp.Ingest)
	}

	// Without the hook the key must be absent (omitempty), so cold
	// snapshot servers keep their existing response shape.
	plain := New(lifestore.NewInMemory(snap), Options{})
	_, body = get(t, plain, "/v1/health")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["ingest"]; ok {
		t.Fatal("ingest key present on a server with no Ingest hook")
	}
}
