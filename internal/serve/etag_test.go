package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
)

// TestEtagConditionalRequests proves the cacheable endpoints carry a
// validator and honour If-None-Match: a revalidation costs a 304 with
// no body, a different resource gets a different validator, and the
// non-cacheable endpoints carry none.
func TestEtagConditionalRequests(t *testing.T) {
	s := New(lifestore.NewInMemory(tinySnapshot(1)), Options{})

	r, w := newRequest("GET", "/v1/asn/64496")
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/asn/64496 = %d", w.Code)
	}
	etag := w.Header().Get("ETag")
	if etag == "" {
		t.Fatal("cacheable endpoint served no ETag")
	}

	// Revalidation: 304, empty body, validator echoed.
	r, w = newRequest("GET", "/v1/asn/64496")
	r.Header.Set("If-None-Match", etag)
	s.ServeHTTP(w, r)
	if w.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match hit = %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("304 carried a %d-byte body", w.Body.Len())
	}
	if w.Header().Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", w.Header().Get("ETag"), etag)
	}

	// A stale or foreign validator is a full 200.
	r, w = newRequest("GET", "/v1/asn/64496")
	r.Header.Set("If-None-Match", `"g999-deadbeef"`)
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK || w.Body.Len() == 0 {
		t.Fatalf("stale validator = %d with %d-byte body, want full 200", w.Code, w.Body.Len())
	}

	// Distinct resources (and distinct queries) get distinct validators.
	r, w = newRequest("GET", "/v1/asn/64500")
	s.ServeHTTP(w, r)
	if other := w.Header().Get("ETag"); other == etag {
		t.Fatalf("different paths share ETag %q", etag)
	}
	r, w = newRequest("GET", "/v1/taxonomy?x=1")
	s.ServeHTTP(w, r)
	first := w.Header().Get("ETag")
	r, w = newRequest("GET", "/v1/taxonomy?x=2")
	s.ServeHTTP(w, r)
	if first == "" || w.Header().Get("ETag") == first {
		t.Fatalf("different queries share ETag %q", first)
	}

	// Non-cacheable endpoints are computed live and carry no validator.
	r, w = newRequest("GET", "/v1/health")
	s.ServeHTTP(w, r)
	if w.Header().Get("ETag") != "" {
		t.Fatalf("/v1/health carries ETag %q", w.Header().Get("ETag"))
	}

	// Errors carry no validator either.
	r, w = newRequest("GET", "/v1/asn/not-a-number")
	s.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest || w.Header().Get("ETag") != "" {
		t.Fatalf("bad request = %d, ETag %q; want 400 with none", w.Code, w.Header().Get("ETag"))
	}
}

// TestEtagReloadInvalidates proves a hot reload rotates the validator:
// the If-None-Match that revalidated against generation 1 misses after
// the swap and the client gets the new generation's body and ETag.
func TestEtagReloadInvalidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lives.snap")
	if err := os.WriteFile(path, tinyImage(t, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	open := FileOpener(path, reg.Registry)
	src, closer, source, err := open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(src, closer, source)
	rl := NewReloader(sw, open, reg.Registry)
	s := New(sw, Options{Obs: reg, Reloader: rl})

	r, w := newRequest("GET", "/v1/asn/64496")
	s.ServeHTTP(w, r)
	etag1 := w.Header().Get("ETag")
	body1 := append([]byte(nil), w.Body.Bytes()...)
	if etag1 == "" {
		t.Fatal("no ETag before reload")
	}

	// Swap in a snapshot with different content (seed 2 changes org IDs).
	if err := os.WriteFile(path, tinyImage(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	r, w = newRequest("POST", "/v1/admin/reload")
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", w.Code, w.Body)
	}

	// The old validator no longer matches: full response, new ETag.
	r, w = newRequest("GET", "/v1/asn/64496")
	r.Header.Set("If-None-Match", etag1)
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("post-reload conditional = %d, want full 200", w.Code)
	}
	etag2 := w.Header().Get("ETag")
	if etag2 == "" || etag2 == etag1 {
		t.Fatalf("post-reload ETag %q did not rotate from %q", etag2, etag1)
	}
	if bytes.Equal(w.Body.Bytes(), body1) {
		t.Fatal("post-reload body identical to generation 1 (cache served stale data)")
	}

	// And the new validator revalidates.
	r, w = newRequest("GET", "/v1/asn/64496")
	r.Header.Set("If-None-Match", etag2)
	s.ServeHTTP(w, r)
	if w.Code != http.StatusNotModified {
		t.Fatalf("new validator = %d, want 304", w.Code)
	}
}

// TestProbeEndpointsInstrumented proves the satellite fix: /metrics,
// /healthz and /readyz ride the metrics wrapper, so their traffic shows
// up in /v1/health's endpoint table and on /metrics itself — while
// remaining exempt from the admission gate.
func TestProbeEndpointsInstrumented(t *testing.T) {
	s := New(lifestore.NewInMemory(tinySnapshot(1)), Options{})
	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/healthz"} {
		r, w := newRequest("GET", path)
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, w.Code)
		}
	}
	r, w := newRequest("GET", "/v1/health")
	s.ServeHTTP(w, r)
	var resp struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int64{"/metrics": 1, "/healthz": 2, "/readyz": 1} {
		ep, ok := resp.Endpoints[path]
		if !ok {
			t.Errorf("%s missing from /v1/health endpoints", path)
			continue
		}
		if ep.Requests != want || ep.Errors != 0 {
			t.Errorf("%s = %d requests %d errors, want %d/0", path, ep.Requests, ep.Errors, want)
		}
	}
}

// TestShardEndpoint pins /v1/shard for both an unsharded source
// (sharded=false, still 200 — the router's probe must distinguish "not
// a shard" from "not our server") and a sharded one (full identity).
func TestShardEndpoint(t *testing.T) {
	plain := New(lifestore.NewInMemory(tinySnapshot(1)), Options{})
	r, w := newRequest("GET", "/v1/shard")
	plain.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("unsharded /v1/shard = %d", w.Code)
	}
	var resp struct {
		Sharded bool `json:"sharded"`
		Shard   *struct {
			Index int    `json:"index"`
			Count int    `json:"count"`
			Lo    uint32 `json:"lo"`
			Hi    uint32 `json:"hi"`
			Sum   string `json:"sum"`
		} `json:"shard"`
		Generation int64 `json:"generation"`
		ASNCount   int   `json:"asnCount"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sharded || resp.Shard != nil || resp.Generation != 1 || resp.ASNCount != len(tinyASNs) {
		t.Fatalf("unsharded /v1/shard = %+v", resp)
	}

	// A sharded store reports its range.
	dir := t.TempDir()
	plan, paths, err := lifestore.SaveSharded(tinySnapshot(1), 2, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	st, si, err := lifestore.OpenShard(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sharded := New(st, Options{})
	r, w = newRequest("GET", "/v1/shard")
	sharded.ServeHTTP(w, r)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Sharded || resp.Shard == nil {
		t.Fatalf("sharded /v1/shard = %+v", resp)
	}
	if resp.Shard.Index != 1 || resp.Shard.Count != 2 ||
		resp.Shard.Lo != uint32(si.Lo) || resp.Shard.Hi != uint32(si.Hi) {
		t.Fatalf("shard identity %+v does not match %+v", resp.Shard, si)
	}
	_ = plan
}
