package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parallellives/internal/obs"
)

// gateExempt lists the paths admission control never sheds: liveness
// and readiness probes must answer while the server is saturated (an
// orchestrator that cannot reach /healthz restarts a merely busy
// process), and /metrics is how operators see the overload at all.
func gateExempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

// ChainOptions configures a request lifecycle Chain. The zero value
// takes the production defaults; negative values disable the
// corresponding control.
type ChainOptions struct {
	// MaxInFlight caps concurrently handled requests; past it new
	// requests are shed with 503 + Retry-After (default 512; negative
	// disables admission control).
	MaxInFlight int
	// RequestTimeout is the per-request deadline attached to the
	// context (default 10s; negative disables).
	RequestTimeout time.Duration
	// Exempt reports paths admission control must never shed. Nil takes
	// the default probe/metrics exemptions (gateExempt).
	Exempt func(path string) bool
}

// Chain is the reusable request lifecycle middleware stack — panic
// recovery around admission control around a per-request deadline —
// shared by the single-snapshot server and the shard router, so every
// HTTP front in the system degrades the same way under load. One Chain
// guards one listener; its counters are the lifecycle numbers /v1/health
// and /metrics expose.
type Chain struct {
	maxInFlight    int
	requestTimeout time.Duration
	exempt         func(string) bool

	inflight      atomic.Int64
	inflightGauge *obs.Gauge
	sheds         *obs.Counter
	panics        *obs.Counter
	timeouts      *obs.Counter
}

// NewChain builds a lifecycle chain publishing its gauges and counters
// to reg.
func NewChain(reg *obs.Registry, opts ChainOptions) *Chain {
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 512
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.Exempt == nil {
		opts.Exempt = gateExempt
	}
	return &Chain{
		maxInFlight:    opts.MaxInFlight,
		requestTimeout: opts.RequestTimeout,
		exempt:         opts.Exempt,
		inflightGauge:  reg.Gauge(MetricInFlight, "Requests currently being handled."),
		sheds:          reg.Counter(MetricSheds, "Requests shed at the admission gate (503 + Retry-After)."),
		panics:         reg.Counter(MetricPanics, "Handler panics converted into 500 responses."),
		timeouts:       reg.Counter(MetricTimeouts, "Lookups abandoned at the request deadline (504)."),
	}
}

// ChainStats is the chain's live state, rendered into /v1/health.
type ChainStats struct {
	InFlight    int64
	MaxInFlight int
	Sheds       int64
	Panics      int64
	Timeouts    int64
}

// Stats returns the chain's current counters.
func (c *Chain) Stats() ChainStats {
	return ChainStats{
		InFlight:    c.inflight.Load(),
		MaxInFlight: c.maxInFlight,
		Sheds:       c.sheds.Value(),
		Panics:      c.panics.Value(),
		Timeouts:    c.timeouts.Value(),
	}
}

// Timeouts returns the chain's deadline-abandonment counter, for
// handlers that classify their own 504s.
func (c *Chain) Timeouts() *obs.Counter { return c.timeouts }

// Wrap stacks the full chain around next: recovery outermost (whatever
// blows up below it fails one request, not the process), then the
// admission gate, then the deadline.
func (c *Chain) Wrap(next http.Handler) http.Handler {
	return c.withRecovery(c.withGate(c.withDeadline(next)))
}

// withRecovery converts a handler panic into a 500 response and keeps
// the process alive.
func (c *Chain) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				c.panics.Inc()
				body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("internal panic: %v", v)})
				// Headers may already be out if the handler panicked
				// mid-write; the write below then fails harmlessly.
				writeBody(w, http.StatusInternalServerError, cached{contentType: "application/json", body: body})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withGate applies admission control: past MaxInFlight concurrent
// requests, new work is shed immediately with 503 + Retry-After rather
// than queued into memory. Shedding early keeps latency bounded for the
// requests actually admitted — the difference between a brownout and a
// collapse under a traffic spike.
func (c *Chain) withGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		in := c.inflight.Add(1)
		defer func() {
			c.inflight.Add(-1)
			c.inflightGauge.Add(-1)
		}()
		c.inflightGauge.Add(1)
		if c.maxInFlight > 0 && in > int64(c.maxInFlight) {
			c.sheds.Inc()
			w.Header().Set("Retry-After", "1")
			body, _ := json.Marshal(map[string]string{
				"error": fmt.Sprintf("overloaded: %d requests in flight (cap %d)", in, c.maxInFlight)})
			writeBody(w, http.StatusServiceUnavailable, cached{contentType: "application/json", body: body})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline attaches the per-request deadline to the context, which
// handlers propagate into backend reads: a request that outlives
// RequestTimeout stops consuming them.
func (c *Chain) withDeadline(next http.Handler) http.Handler {
	if c.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), c.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// HTTPOptions configures the hardened http.Server and its shutdown
// drain. Zero fields take the listed defaults; serving with no timeouts
// at all (the bare http.ListenAndServe shape) is not expressible here,
// by design — a single slow-loris client would otherwise pin a
// connection forever.
type HTTPOptions struct {
	// ReadHeaderTimeout bounds header arrival (default 5s); ReadTimeout
	// the whole request read (default 30s); WriteTimeout the response
	// write (default 60s); IdleTimeout keep-alive idling (default 120s).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the stop signal before the server is torn
	// down hard (default 10s).
	DrainTimeout time.Duration
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 60 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 120 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

// NewHTTPServer builds an http.Server with every timeout set.
func NewHTTPServer(h http.Handler, opts HTTPOptions) *http.Server {
	opts = opts.withDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
	}
}

// Listen binds addr, surfacing bind errors (port taken, bad address)
// before any serving output is produced.
func Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: binding %s: %w", addr, err)
	}
	return ln, nil
}

// Run serves h on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes (new connections are refused), every
// in-flight request gets up to DrainTimeout to complete, and only then
// are the survivors' connections torn down. Returns nil on a clean
// drain, the shutdown error when the drain deadline expired, or the
// serve error if the listener failed first.
func Run(ctx context.Context, ln net.Listener, h http.Handler, opts HTTPOptions) error {
	opts = opts.withDefaults()
	srv := NewHTTPServer(h, opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drain)
	<-errc // Serve has returned http.ErrServerClosed by now
	if err != nil {
		return fmt.Errorf("serve: shutdown drain incomplete after %v: %w", opts.DrainTimeout, err)
	}
	return nil
}

// retryAfter is the value shed and short-circuit responses advertise.
func retryAfterHeader(w http.ResponseWriter, seconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
}
