package serve

import (
	"sync"
	"time"

	"parallellives/internal/obs"
)

// Breaker states, exported on the state gauge and in /v1/health. The
// wire values are frozen: dashboards alert on them.
const (
	breakerClosed   = 0 // normal operation
	breakerOpen     = 1 // tripping: requests short-circuit
	breakerHalfOpen = 2 // cooled down: one probe request allowed through
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker. The single-snapshot
// server uses one to guard the lifestore block-decode path; the shard
// router uses one per shard to guard its backend. Closed, it passes
// every request and counts consecutive failures; at threshold it opens,
// and requests short-circuit to 503 without touching the guarded
// resource — a snapshot file on a failing disk, or a dead shard
// process, would otherwise turn every request into a slow error. After
// cooldown it half-opens: exactly one probe request is let through, and
// its outcome decides between closing (recovered) and re-opening (still
// broken).
//
// Context cancellations are deliberately not failures: a client giving
// up says nothing about the guarded resource's health.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    int
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	stateGauge    *obs.Gauge
	trips         *obs.Counter
	shortCircuits *obs.Counter
}

// NewBreaker builds a closed breaker publishing its state to the given
// instruments. All three must be non-nil; callers choose the metric
// names (and labels) so one registry can carry many breakers.
func NewBreaker(threshold int, cooldown time.Duration, state *obs.Gauge, trips, shortCircuits *obs.Counter) *Breaker {
	return &Breaker{
		threshold:     threshold,
		cooldown:      cooldown,
		now:           time.Now,
		stateGauge:    state,
		trips:         trips,
		shortCircuits: shortCircuits,
	}
}

// newBreaker builds the serving tier's store breaker under its
// canonical metric names.
func newBreaker(threshold int, cooldown time.Duration, reg *obs.Registry) *Breaker {
	return NewBreaker(threshold, cooldown,
		reg.Gauge(MetricBreakerState,
			"Lifestore circuit-breaker state (0 closed, 1 open, 2 half-open)."),
		reg.Counter(MetricBreakerTrips,
			"Times the lifestore circuit breaker opened."),
		reg.Counter(MetricBreakerShortCircuits,
			"Lookups rejected without touching the store while the breaker was open."))
}

// Allow reports whether a request may proceed. While open it returns
// false (counting a short-circuit) until the cooldown elapses, then
// admits a single probe in half-open state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shortCircuits.Inc()
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.stateGauge.Set(breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			b.shortCircuits.Inc()
			return false
		}
		b.probing = true
		return true
	}
}

// OnSuccess records a success: closed resets the failure run, half-open
// closes the breaker.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.probing = false
		b.stateGauge.Set(breakerClosed)
	}
}

// OnNeutral records a request that ended without evidence either way —
// a context cancellation says nothing about the resource. Its only
// effect is releasing a half-open probe slot so the next request probes
// instead.
func (b *Breaker) OnNeutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// OnFailure records a failure: at threshold consecutive failures the
// breaker opens; a failed half-open probe re-opens immediately.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.open()
		}
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.consec = 0
	b.probing = false
	b.trips.Inc()
	b.stateGauge.Set(breakerOpen)
}

// Snapshot returns the current state for health reporting.
func (b *Breaker) Snapshot() (state string, consecutive int, trips, shortCircuits int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName(b.state), b.consec, b.trips.Value(), b.shortCircuits.Value()
}
