package serve

import (
	"sync"
	"time"

	"parallellives/internal/obs"
)

// Breaker states, exported on the MetricBreakerState gauge and in
// /v1/health. The wire values are frozen: dashboards alert on them.
const (
	breakerClosed   = 0 // normal operation
	breakerOpen     = 1 // tripping: lookups short-circuit
	breakerHalfOpen = 2 // cooled down: one probe request allowed through
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a consecutive-failure circuit breaker guarding the
// lifestore block-decode path. Closed, it passes every lookup and
// counts consecutive failures; at threshold it opens, and lookups
// short-circuit to 503 without touching the store — a snapshot file on
// a failing disk or NFS mount would otherwise turn every request into a
// slow error. After cooldown it half-opens: exactly one probe request
// is let through, and its outcome decides between closing (recovered)
// and re-opening (still broken).
//
// Context cancellations are deliberately not failures: a client giving
// up says nothing about the store's health.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    int
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	stateGauge    *obs.Gauge
	trips         *obs.Counter
	shortCircuits *obs.Counter
}

// newBreaker builds a closed breaker publishing to reg.
func newBreaker(threshold int, cooldown time.Duration, reg *obs.Registry) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		stateGauge: reg.Gauge(MetricBreakerState,
			"Lifestore circuit-breaker state (0 closed, 1 open, 2 half-open)."),
		trips: reg.Counter(MetricBreakerTrips,
			"Times the lifestore circuit breaker opened."),
		shortCircuits: reg.Counter(MetricBreakerShortCircuits,
			"Lookups rejected without touching the store while the breaker was open."),
	}
}

// allow reports whether a lookup may proceed. While open it returns
// false (counting a short-circuit) until the cooldown elapses, then
// admits a single probe in half-open state.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shortCircuits.Inc()
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.stateGauge.Set(breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			b.shortCircuits.Inc()
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a successful lookup: closed resets the failure run,
// half-open closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.probing = false
		b.stateGauge.Set(breakerClosed)
	}
}

// onNeutral records a lookup that ended without evidence either way —
// a context cancellation says nothing about the store. Its only effect
// is releasing a half-open probe slot so the next lookup probes
// instead.
func (b *breaker) onNeutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// onFailure records a failed lookup: at threshold consecutive failures
// the breaker opens; a failed half-open probe re-opens immediately.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.open()
		}
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.consec = 0
	b.probing = false
	b.trips.Inc()
	b.stateGauge.Set(breakerOpen)
}

// snapshot returns the current state for /v1/health.
func (b *breaker) snapshot() (state string, consecutive int, trips, shortCircuits int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName(b.state), b.consec, b.trips.Value(), b.shortCircuits.Value()
}
