package serve

import (
	"container/list"
	"strconv"
	"sync"
)

// cached is one stored response body with its content type, plus the
// validator rendered for it and the generation it belongs to — carrying
// the ETag with the entry lets a cache hit revalidate or respond without
// rebuilding the string.
type cached struct {
	contentType string
	body        []byte
	etag        string
	gen         int64

	// Prebuilt single-value header slices, rendered once when the entry
	// is stored so a cache hit writes its headers without allocating.
	// Shared across responses and never mutated after construction; nil
	// on entries built inline for one response (error bodies), which
	// take the allocating path in writeBody.
	typeHdr []string
	lenHdr  []string
	etagHdr []string
}

// newCached builds a cache-ready entry with its header values rendered
// up front.
func newCached(contentType string, body []byte, etag string, gen int64) cached {
	c := cached{contentType: contentType, body: body, etag: etag, gen: gen}
	c.typeHdr = []string{contentType}
	c.lenHdr = []string{strconv.Itoa(len(body))}
	if etag != "" {
		c.etagHdr = []string{etag}
	}
	return c
}

// lru is a fixed-capacity least-recently-used response cache. It is safe
// for concurrent use; hit/miss counts are kept under the same lock as
// the structure itself, so they are exact.
type lru struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

type lruEntry struct {
	key string
	val cached
}

func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value for key, marking it most recently used.
func (c *lru) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return cached{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores a value, evicting the least recently used entry when full.
func (c *lru) put(key string, val cached) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// flush drops every entry, keeping the hit/miss history. A snapshot
// reload flushes so no cached body outlives the generation that
// rendered it.
func (c *lru) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

// stats returns the counters and current size.
func (c *lru) stats() (hits, misses uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.capacity
}
