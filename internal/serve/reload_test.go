package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
)

// reloadFixture wires a file-backed Swappable + Reloader + Server the
// way cmd/asnserve does, returning the snapshot path for overwrites.
func reloadFixture(t *testing.T, o *obs.Obs) (*Server, *Reloader, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lives.snap")
	if err := lifestore.SaveSnapshot(tinySnapshot(1), path); err != nil {
		t.Fatal(err)
	}
	open := FileOpener(path, o.Registry)
	src, closer, source, err := open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(src, closer, source)
	rel := NewReloader(sw, open, o.Registry)
	srv := New(sw, Options{Obs: o, Reloader: rel})
	return srv, rel, path
}

func postReload(t *testing.T, h http.Handler) (int, []byte) {
	t.Helper()
	req, rec := newRequest(http.MethodPost, "/v1/admin/reload")
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestHotReloadSwapsGenerations reloads a changed snapshot through the
// admin endpoint and checks the generation bookkeeping, the flushed
// response cache, and that the new data is what's served.
func TestHotReloadSwapsGenerations(t *testing.T) {
	o := obs.New()
	srv, _, path := reloadFixture(t, o)

	code, before := get(t, srv, "/v1/asn/64496")
	if code != http.StatusOK {
		t.Fatalf("initial lookup: status %d", code)
	}
	get(t, srv, "/v1/asn/64496") // prime the cache

	// A different seed changes each admin life's opaque org ID, so the
	// reloaded generation serves observably different bodies.
	if err := lifestore.SaveSnapshot(tinySnapshot(2), path); err != nil {
		t.Fatal(err)
	}
	code, body := postReload(t, srv)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d, body %s", code, body)
	}
	var info GenInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 || info.ASNCount != len(tinyASNs) {
		t.Errorf("reload info = %+v, want gen 2 over %d ASNs", info, len(tinyASNs))
	}

	code, after := get(t, srv, "/v1/asn/64496")
	if code != http.StatusOK {
		t.Fatalf("post-reload lookup: status %d", code)
	}
	if string(before) == string(after) {
		t.Error("post-reload body identical to pre-reload: cache not flushed or store not swapped")
	}

	lc := healthLifecycle(t, srv)
	if lc.Generation == nil || lc.Generation.Gen != 2 {
		t.Errorf("health generation = %+v, want gen 2", lc.Generation)
	}
	if lc.PrevGeneration == nil || lc.PrevGeneration.Gen != 1 {
		t.Errorf("health prevGeneration = %+v, want gen 1", lc.PrevGeneration)
	}
	if v, ok := o.Registry.Value(MetricGeneration); !ok || v != 2 {
		t.Errorf("generation gauge = %v (ok=%v), want 2", v, ok)
	}
}

// TestReloadRejectsCorrupt overwrites the snapshot with two corruption
// shapes — garbage that fails open, and a bit-flipped block that only
// full verification catches — and checks both are rejected with 502
// while the old generation keeps serving.
func TestReloadRejectsCorrupt(t *testing.T) {
	o := obs.New()
	srv, _, path := reloadFixture(t, o)

	img := tinyImage(t, 1)
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)-6] ^= 0x80 // inside the last life block

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("not a snapshot at all")},
		{"bitflipped-block", flipped},
	} {
		// Replace atomically (temp + rename), the way SaveSnapshot and
		// any sane operator does: the old generation's open fd keeps
		// reading the previous inode.
		tmp := path + ".next"
		if err := os.WriteFile(tmp, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
		code, body := postReload(t, srv)
		if code != http.StatusBadGateway {
			t.Errorf("%s: reload status %d, want 502 (body %s)", tc.name, code, body)
		}
		if code, _ := get(t, srv, "/v1/asn/64496"); code != http.StatusOK {
			t.Errorf("%s: old generation stopped serving: status %d", tc.name, code)
		}
		if lc := healthLifecycle(t, srv); lc.Generation == nil || lc.Generation.Gen != 1 {
			t.Errorf("%s: generation = %+v, want still gen 1", tc.name, lc.Generation)
		}
	}
}

// TestReloadUnderConcurrentLoad swaps generations repeatedly while
// clients hammer lookups; run under -race this is the atomic-swap
// acceptance check. Every response must be a valid 200 — a swap must
// never surface as a failed or dropped request.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	o := obs.New()
	srv, rel, path := reloadFixture(t, o)

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := tinyASNs[(g+i)%len(tinyASNs)]
				code, body := get(t, srv, fmt.Sprintf("/v1/asn/%s", a))
				if code != http.StatusOK || !json.Valid(body) {
					errs <- fmt.Errorf("AS%s during reload churn: status %d body %q", a, code, body)
					return
				}
			}
		}(g)
	}

	for i := 0; i < 5; i++ {
		seed := int64(i%2 + 1)
		if err := lifestore.SaveSnapshot(tinySnapshot(seed), path); err != nil {
			t.Fatal(err)
		}
		if _, err := rel.Reload(context.Background()); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lc := healthLifecycle(t, srv); lc.Generation == nil || lc.Generation.Gen != 6 {
		t.Errorf("generation after 5 reloads = %+v, want 6", lc.Generation)
	}
}

// TestSwappableRetiresOldGeneration pins the refcounted close: a swap
// with a borrow in flight must not close the old source until the
// borrow returns, and must close it promptly afterwards.
func TestSwappableRetiresOldGeneration(t *testing.T) {
	oldSrc := newBlockingSource(lifestore.NewInMemory(tinySnapshot(1)))
	closer := &recordCloser{}
	sw := NewSwappable(oldSrc, closer, "gen1")

	borrowed := make(chan error, 1)
	go func() {
		_, _, err := sw.LookupContext(context.Background(), tinyASNs[0])
		borrowed <- err
	}()
	select {
	case <-oldSrc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("borrow never reached the old source")
	}

	info := sw.Swap(lifestore.NewInMemory(tinySnapshot(2)), nil, "gen2")
	if info.Gen != 2 {
		t.Fatalf("swap returned gen %d, want 2", info.Gen)
	}
	// The old generation still has a borrower: its closer must not fire.
	time.Sleep(20 * time.Millisecond)
	if closer.closed.Load() {
		t.Fatal("old generation closed while a lookup was still borrowing it")
	}

	close(oldSrc.release)
	if err := <-borrowed; err != nil {
		t.Fatalf("borrowed lookup failed: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !closer.closed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("old generation never closed after its last borrow returned")
		}
		time.Sleep(time.Millisecond)
	}

	// New lookups see the new generation.
	cur, prev := sw.Generations()
	if cur.Gen != 2 || prev == nil || prev.Gen != 1 {
		t.Errorf("generations = %+v / %+v, want 2 / 1", cur, prev)
	}
}
