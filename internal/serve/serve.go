// Package serve exposes a computed ASN-lives dataset over a concurrent
// HTTP API. It answers from a lifestore — either a snapshot file opened
// cold (lifestore.Store) or a freshly captured in-memory snapshot
// (lifestore.InMemory) — so serving never re-runs the pipeline.
//
// Endpoints (all GET, all JSON):
//
//	/v1/asn/{n}        one ASN's parallel lives with taxonomy categories
//	/v1/rir/{r}/series daily alive counts for one registry (or "all"),
//	                   downsampled with ?stride=N days
//	/v1/taxonomy       the Table-3 taxonomy counts and shares
//	/v1/health         pipeline health + store metadata + cache and
//	                   per-endpoint request/latency counters
//	/v1/stages         the build's stage trace (404 when the dataset was
//	                   built without observability attached)
//	/metrics           Prometheus text exposition of the server's
//	                   registry: serve traffic, cache state, the build's
//	                   pipeline/health metrics, and anything else
//	                   published to the shared registry (lifestore reads,
//	                   pipeline counters)
//	/healthz           liveness probe (always 200 while the process runs)
//	/readyz            readiness probe (503 while the breaker is open)
//	/v1/admin/reload   POST: verified hot snapshot reload (only with
//	                   Options.Reloader)
//
// Responses for the data endpoints are cached in a fixed-size LRU keyed
// by path and query; /v1/health is always computed live.
//
// Every request runs inside a lifecycle-control chain (lifecycle.go):
// panic recovery, an admission gate that sheds load past a concurrency
// cap with 503 + Retry-After, and a per-request deadline propagated via
// context into lifestore lookups. Block reads are additionally guarded
// by a circuit breaker (breaker.go) that trips on consecutive
// checksum/IO failures, and the backing snapshot can be hot-reloaded
// through a generation-refcounted swap (reload.go). See DESIGN.md §9.
//
// Endpoint counters live on an obs.Registry rather than ad-hoc atomics,
// so the same numbers surface identically on /v1/health (JSON, with
// derived p50/p99) and /metrics (Prometheus histogram).
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/report"
)

// Registry metric names the server publishes.
const (
	// MetricRequests counts requests by endpoint pattern.
	MetricRequests = "parallellives_serve_requests_total"
	// MetricErrors counts handler failures by endpoint pattern.
	MetricErrors = "parallellives_serve_errors_total"
	// MetricLatency is the per-endpoint request latency histogram.
	MetricLatency = "parallellives_serve_request_seconds"
	// MetricCacheHits / MetricCacheMisses / MetricCacheEntries mirror the
	// LRU's own accounting into the registry at scrape time.
	MetricCacheHits    = "parallellives_serve_cache_hits"
	MetricCacheMisses  = "parallellives_serve_cache_misses"
	MetricCacheEntries = "parallellives_serve_cache_entries"
	// MetricInFlight gauges requests currently being handled;
	// MetricSheds counts admissions refused past the in-flight cap.
	MetricInFlight = "parallellives_serve_inflight"
	MetricSheds    = "parallellives_serve_shed_total"
	// MetricPanics counts handler panics converted into 500s.
	MetricPanics = "parallellives_serve_panics_total"
	// MetricTimeouts counts lookups abandoned at the request deadline.
	MetricTimeouts = "parallellives_serve_timeouts_total"
	// Breaker instrumentation (see breaker.go for the state values).
	MetricBreakerState         = "parallellives_serve_breaker_state"
	MetricBreakerTrips         = "parallellives_serve_breaker_trips_total"
	MetricBreakerShortCircuits = "parallellives_serve_breaker_short_circuits_total"
	// Reload instrumentation (see reload.go).
	MetricReloads    = "parallellives_serve_reload_total"
	MetricGeneration = "parallellives_serve_generation"
)

// Source is the query surface the server needs; *lifestore.Store,
// *lifestore.InMemory and *Swappable all implement it. Lookups carry
// the request context so a server-side deadline or a departed client
// stops backend reads.
type Source interface {
	Meta() lifestore.Meta
	Health() pipeline.Health
	Taxonomy() core.TaxonomyCounts
	Series() *core.AliveSeries
	LookupContext(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, error)
	ASNCount() int
}

// Options configures a server.
type Options struct {
	// CacheSize is the LRU response-cache capacity in entries
	// (default 256; negative disables caching).
	CacheSize int
	// DefaultStride is the series downsampling default in days when the
	// request carries no ?stride (default 30).
	DefaultStride int
	// Obs supplies the observability core the server publishes to. Pass
	// the same Obs the pipeline built with and /metrics exposes build
	// and serve metrics side by side while /v1/stages serves the build
	// trace. Nil gets the server a private obs.New().
	Obs *obs.Obs

	// MaxInFlight caps concurrently handled requests; past it new
	// requests are shed with 503 + Retry-After (default 512; negative
	// disables admission control). Probes and /metrics are exempt.
	MaxInFlight int
	// RequestTimeout is the per-request deadline propagated into
	// lifestore lookups (default 10s; negative disables).
	RequestTimeout time.Duration
	// BreakerThreshold is the consecutive lookup failures that trip the
	// lifestore circuit breaker (default 5; negative disables the
	// breaker). BreakerCooldown is how long it stays open before
	// half-opening a probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Reloader, when set, enables POST /v1/admin/reload and ties the
	// response cache to the snapshot generation: every successful swap
	// flushes it. Serve through the Reloader's Swappable as the Source,
	// or reloads will swap a store nobody queries.
	Reloader *Reloader

	// Ingest, when set, is polled per /v1/health request and rendered
	// under "ingest" in the response — the live-tail daemon passes the
	// tailer's Status method here so staleness, checkpoint age and
	// recovery counts ride the same probe as the serving health. The
	// returned value must be JSON-serializable and the function safe for
	// concurrent use.
	Ingest func() any

	// ExemplarCapacity sizes the slow/error exemplar ring behind
	// /v1/debug/slow: the span trees of the slowest-N and the last N
	// failed requests (default 32; negative disables capture, and with
	// it per-request span recording for untraced requests).
	ExemplarCapacity int
	// SpanIDs overrides the request tracer's span/trace ID source —
	// tests inject deterministic sequences. Nil uses the process-wide
	// random source.
	SpanIDs obs.IDSource

	// Replica names this process within a replicated shard set. It rides
	// the /v1/shard handshake payload so a router can tell two replicas
	// of the same range apart (and refuse the same process listed
	// twice). Empty gets a random 8-hex-digit ID at startup — replica
	// identity only has to be unique within one fleet, not stable across
	// restarts.
	Replica string
}

// Server is the HTTP API over one opened dataset. It is safe for
// concurrent use.
type Server struct {
	src           Source
	mux           *http.ServeMux
	handler       http.Handler // mux wrapped in the lifecycle middleware
	cache         *lru
	obs           *obs.Obs
	metrics       map[string]*endpointMetrics
	cacheHits     *obs.Gauge
	cacheMisses   *obs.Gauge
	cacheEntries  *obs.Gauge
	defaultStride int

	// Request lifecycle control (see lifecycle.go).
	chain    *Chain
	breaker  *Breaker
	reloader *Reloader
	ingest   func() any

	// Request tracing + exemplar capture (DESIGN.md §13).
	exemplars *obs.ExemplarRing
	spanIDs   obs.IDSource
	runtime   *obs.RuntimeStats

	// Replica identity reported in the /v1/shard handshake (§14).
	replica string
}

// endpointMetrics holds one endpoint's pre-resolved registry handles.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// latencyBuckets spans the in-process serving range: cache hits land in
// the low microseconds, cold block reads in the milliseconds.
func latencyBuckets() []float64 { return obs.ExpBuckets(0.000001, 10, 8) }

// randomReplicaID generates the default replica identity: 8 hex digits,
// unique enough within one fleet. The PID fallback keeps two replicas on
// one host distinguishable even if the random source fails.
func randomReplicaID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("pid-%d", os.Getpid())
	}
	return hex.EncodeToString(b[:])
}

// New builds the server around a source.
func New(src Source, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = 256
	}
	if opts.CacheSize < 0 {
		opts.CacheSize = 0
	}
	if opts.DefaultStride <= 0 {
		opts.DefaultStride = 30
	}
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.ExemplarCapacity == 0 {
		opts.ExemplarCapacity = 32
	}
	if opts.Replica == "" {
		opts.Replica = randomReplicaID()
	}
	reg := opts.Obs.Registry
	s := &Server{
		src:           src,
		mux:           http.NewServeMux(),
		cache:         newLRU(opts.CacheSize),
		obs:           opts.Obs,
		metrics:       make(map[string]*endpointMetrics),
		cacheHits:     reg.Gauge(MetricCacheHits, "LRU response-cache hits since start."),
		cacheMisses:   reg.Gauge(MetricCacheMisses, "LRU response-cache misses since start."),
		cacheEntries:  reg.Gauge(MetricCacheEntries, "LRU response-cache entries currently held."),
		defaultStride: opts.DefaultStride,

		chain: NewChain(reg, ChainOptions{
			MaxInFlight:    opts.MaxInFlight,
			RequestTimeout: opts.RequestTimeout,
		}),
		reloader:  opts.Reloader,
		ingest:    opts.Ingest,
		exemplars: obs.NewExemplarRing(opts.ExemplarCapacity),
		spanIDs:   opts.SpanIDs,
		runtime:   obs.RegisterRuntime(reg),
		replica:   opts.Replica,
	}
	if opts.BreakerThreshold > 0 {
		s.breaker = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, reg)
	}
	// Bridge the build's health report into the registry so a /metrics
	// scrape carries the dataset's provenance even when the server was
	// handed a cold snapshot rather than a live pipeline run.
	h := src.Health()
	h.Export(reg)
	s.mux.HandleFunc("GET /v1/asn/{n}", s.wrap("/v1/asn/{n}", true, s.handleASN))
	s.mux.HandleFunc("GET /v1/rir/{r}/series", s.wrap("/v1/rir/{r}/series", true, s.handleSeries))
	s.mux.HandleFunc("GET /v1/taxonomy", s.wrap("/v1/taxonomy", true, s.handleTaxonomy))
	s.mux.HandleFunc("GET /v1/health", s.wrap("/v1/health", false, s.handleHealth))
	s.mux.HandleFunc("GET /v1/stages", s.wrap("/v1/stages", false, s.handleStages))
	s.mux.HandleFunc("GET /v1/shard", s.wrap("/v1/shard", false, s.handleShard))
	s.mux.HandleFunc("GET /v1/debug/slow", s.wrap("/v1/debug/slow", false, s.handleSlow))
	// The probe and scrape endpoints write their own bodies (text, not
	// JSON) but still ride the metrics wrapper, so /v1/health and
	// /metrics account for every request the process answers. They stay
	// exempt from the admission gate and deadline via gateExempt.
	s.mux.HandleFunc("GET /metrics", s.wrapRaw("/metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.wrapRaw("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.wrapRaw("/readyz", s.handleReadyz))
	if s.reloader != nil {
		s.mux.HandleFunc("POST /v1/admin/reload", s.wrap("/v1/admin/reload", false, s.handleReload))
		// Cached bodies belong to the generation that rendered them.
		s.reloader.OnSwap(s.cache.flush)
	}
	s.handler = s.chain.Wrap(s.mux)
	return s
}

// ServeHTTP implements http.Handler: the mux behind the lifecycle
// middleware chain — panic recovery around admission control around the
// per-request deadline.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// apiError is a handler failure with its HTTP status. retryAfter > 0
// adds a Retry-After header — the explicit "come back later" that
// distinguishes a shed or short-circuited request from a dead one.
type apiError struct {
	code       int
	msg        string
	retryAfter int
}

func errf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

func retryf(code, after int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...), retryAfter: after}
}

// etagCastagnoli matches the snapshot file's checksum polynomial — one
// CRC flavour across the system.
var etagCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// EtagFor renders the validator for one (generation, path?query) pair:
// `"g<gen>-<crc32c(key)>"`. The generation makes a hot reload invalidate
// every cached copy at once; the key hash distinguishes resources within
// a generation. Derived from identity rather than the body, so a 304 can
// be answered before the handler runs — and so the router can recognise
// which generation a shard's response came from without re-reading it.
func EtagFor(gen int64, key string) string {
	// Renders `"g<gen>-<crc32c(key)>"` by hand, hashing the key without a
	// []byte conversion: this runs once per cacheable request, and
	// fmt.Sprintf alone costs more than the rest of a cache-hit response.
	sum := ^uint32(0)
	for i := 0; i < len(key); i++ {
		sum = etagCastagnoli[byte(sum)^key[i]] ^ (sum >> 8)
	}
	sum = ^sum
	var scratch [40]byte
	b := append(scratch[:0], '"', 'g')
	b = strconv.AppendInt(b, gen, 10)
	b = append(b, '-')
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, "0123456789abcdef"[(sum>>uint(shift))&0xf])
	}
	b = append(b, '"')
	return string(b)
}

// generation reports the serving snapshot's generation for validators:
// the Swappable's monotone counter when hot reload is wired, else the
// constant first generation (a process that cannot reload serves one
// immutable dataset for its whole life).
func (s *Server) generation() int64 {
	if sw, ok := s.src.(*Swappable); ok {
		cur, _ := sw.Generations()
		return cur.Gen
	}
	return 1
}

// wrap adds caching, conditional-request handling, metrics and JSON
// rendering around a handler. The registry handles are resolved once
// here, so the per-request cost is pure atomics.
//
// Cacheable endpoints carry an ETag derived from (generation, key); an
// If-None-Match hit answers 304 without running the handler or touching
// the response cache — revalidation stays cheap even when the body
// would be expensive to rebuild.
func (s *Server) wrap(label string, cacheable bool, fn func(*http.Request) (any, *apiError)) http.HandlerFunc {
	reg := s.obs.Registry
	m := &endpointMetrics{
		requests: reg.CounterVec(MetricRequests, "API requests by endpoint pattern.", "endpoint").With(label),
		errors:   reg.CounterVec(MetricErrors, "API handler failures by endpoint pattern.", "endpoint").With(label),
		latency: reg.HistogramVec(MetricLatency, "API request latency by endpoint pattern.",
			latencyBuckets(), "endpoint").With(label),
	}
	s.metrics[label] = m
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()

		key := r.URL.Path
		if r.URL.RawQuery != "" {
			key += "?" + r.URL.RawQuery
		}

		// Per-request trace (DESIGN.md §13). A fresh tracer per request —
		// the process tracer keeps every root forever, so it must not see
		// request spans. Recording happens when exemplar capture is on or
		// the client sent trace context; with both disabled the request
		// runs exactly the pre-tracing path.
		remote, traced := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		var span *obs.Span
		var status int // set at every write site below; read by the untraced exemplar defer
		if traced || s.exemplars.Arming() {
			ctx := obs.WithTracer(r.Context(), obs.NewTracerWithIDs(nil, s.spanIDs))
			if traced {
				ctx = obs.WithRemoteParent(ctx, remote)
			}
			ctx, span = obs.StartSpan(ctx, "serve "+label)
			r = r.WithContext(ctx)
			tw := &traceWriter{ResponseWriter: w, finish: func(status int) {
				// Runs once, just before the first response byte: the span
				// must end here so its summary can still travel as a header.
				span.SetAttr("status", int64(status))
				span.End()
				if traced {
					if b, err := json.Marshal(obs.Summarize(span)); err == nil {
						w.Header().Set(obs.SpanHeader, string(b))
					}
				}
			}}
			w = tw
			defer func() {
				d := time.Since(start)
				m.latency.Observe(d.Seconds())
				status := tw.status
				if !tw.done {
					// Every normal path writes a response, so an open span
					// here means a panic is unwinding: the recovery
					// middleware owns the response (a 500 on the underlying
					// writer) — end the span without touching ours.
					status = http.StatusInternalServerError
					span.SetAttr("status", int64(status))
					span.End()
				}
				s.exemplars.OfferLazy(obs.Exemplar{
					CapturedUnixNs: start.UnixNano(),
					Endpoint:       label,
					Path:           key,
					Status:         status,
					DurationNs:     d.Nanoseconds(),
					TraceID:        span.TraceID(),
				}, func() obs.SpanSummary { return obs.Summarize(span) })
			}()
		} else if s.exemplars != nil {
			// Steady state with the ring's floor set: untraced requests skip
			// the tracer entirely and offer an outcome-only exemplar — one
			// atomic load rejects the typical request, and a late outlier is
			// still admitted (without a span tree, which only the arming
			// phase and traced requests capture). The status is tracked in a
			// local rather than a writer wrapper: every response below is
			// written by this function, and the wrapper allocation is the
			// kind of per-request cost this branch exists to avoid.
			defer func() {
				d := time.Since(start)
				m.latency.Observe(d.Seconds())
				if status == 0 {
					// Every normal path records a status, so zero means a
					// panic is unwinding and the recovery middleware owns
					// the 500.
					status = http.StatusInternalServerError
				}
				s.exemplars.OfferLazy(obs.Exemplar{
					CapturedUnixNs: start.UnixNano(),
					Endpoint:       label,
					Path:           key,
					Status:         status,
					DurationNs:     d.Nanoseconds(),
				}, nil)
			}()
		} else {
			defer func() { m.latency.Observe(time.Since(start).Seconds()) }()
		}
		var etag string
		var gen int64
		if cacheable {
			gen = s.generation()
			if c, ok := s.cache.get(key); ok && c.gen == gen {
				// Hit: the entry carries its validator and header values,
				// so the hot path renders no strings at all.
				w.Header()["Etag"] = c.etagHdr
				if r.Header.Get("If-None-Match") == c.etag {
					status = http.StatusNotModified
					w.WriteHeader(http.StatusNotModified)
					return
				}
				status = http.StatusOK
				writeBody(w, http.StatusOK, c)
				return
			}
			// Miss (or an entry from a generation the flush hasn't caught
			// yet — the put below replaces it): render the validator once
			// and answer 304 without running the handler if it matches.
			etag = EtagFor(gen, key)
			if r.Header.Get("If-None-Match") == etag {
				w.Header().Set("ETag", etag)
				status = http.StatusNotModified
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		payload, apiErr := fn(r)
		if apiErr != nil {
			m.errors.Inc()
			if apiErr.retryAfter > 0 {
				retryAfterHeader(w, apiErr.retryAfter)
			}
			body, _ := json.Marshal(map[string]string{"error": apiErr.msg})
			status = apiErr.code
			writeBody(w, apiErr.code, cached{contentType: "application/json", body: body})
			return
		}
		body, err := json.Marshal(payload)
		if err != nil {
			m.errors.Inc()
			status = http.StatusInternalServerError
			http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
			return
		}
		c := newCached("application/json", body, etag, gen)
		if cacheable {
			s.cache.put(key, c)
			w.Header()["Etag"] = c.etagHdr
		}
		status = http.StatusOK
		writeBody(w, http.StatusOK, c)
	}
}

// traceWriter finalizes the request span just before the first response
// byte — headers must be set before WriteHeader, so the span summary
// can only travel back to a traced caller if the span ends here. The
// span therefore measures time to first byte; the endpoint latency
// histogram keeps measuring the full handler.
type traceWriter struct {
	http.ResponseWriter
	status int
	done   bool
	finish func(status int)
}

func (w *traceWriter) WriteHeader(code int) {
	if !w.done {
		w.done = true
		w.status = code
		w.finish(code)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceWriter) Write(b []byte) (int, error) {
	if !w.done {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// statusWriter records the status a raw handler wrote, so wrapRaw can
// classify failures without owning the body.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrapRaw instruments a handler that writes its own response (the text
// probes and the Prometheus scrape): request count, latency, and an
// error count for 5xx statuses. Unlike wrap it never touches the body —
// these endpoints are not JSON and not cacheable.
func (s *Server) wrapRaw(label string, fn http.HandlerFunc) http.HandlerFunc {
	reg := s.obs.Registry
	m := &endpointMetrics{
		requests: reg.CounterVec(MetricRequests, "API requests by endpoint pattern.", "endpoint").With(label),
		errors:   reg.CounterVec(MetricErrors, "API handler failures by endpoint pattern.", "endpoint").With(label),
		latency: reg.HistogramVec(MetricLatency, "API request latency by endpoint pattern.",
			latencyBuckets(), "endpoint").With(label),
	}
	s.metrics[label] = m
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() { m.latency.Observe(time.Since(start).Seconds()) }()
		m.requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		fn(sw, r)
		if sw.status >= http.StatusInternalServerError {
			m.errors.Inc()
		}
	}
}

func writeBody(w http.ResponseWriter, status int, c cached) {
	h := w.Header()
	if c.typeHdr != nil {
		// Cache-ready entries carry their header values prebuilt (the
		// canonical key spellings below match what Header.Set stores), so
		// the hit path writes headers without rendering anything.
		h["Content-Type"] = c.typeHdr
		h["Content-Length"] = c.lenHdr
	} else {
		h.Set("Content-Type", c.contentType)
		h.Set("Content-Length", strconv.Itoa(len(c.body)))
	}
	w.WriteHeader(status)
	w.Write(c.body)
}

// adminLifeJSON is one administrative life in an /v1/asn response.
type adminLifeJSON struct {
	ID          string        `json:"id"`
	RIR         string        `json:"rir"`
	CC          string        `json:"cc,omitempty"`
	OrgID       string        `json:"orgId,omitempty"`
	RegDate     string        `json:"regDate"`
	Start       string        `json:"start"`
	End         string        `json:"end"`
	Days        int           `json:"days"`
	Open        bool          `json:"open"`
	Transferred bool          `json:"transferred,omitempty"`
	Pieces      int           `json:"pieces"`
	Category    core.Category `json:"category"`
}

// opLifeJSON is one operational life in an /v1/asn response.
type opLifeJSON struct {
	ID       string        `json:"id"`
	Start    string        `json:"start"`
	End      string        `json:"end"`
	Days     int           `json:"days"`
	Category core.Category `json:"category"`
}

type asnResponse struct {
	ASN   asn.ASN         `json:"asn"`
	Admin []adminLifeJSON `json:"admin"`
	Op    []opLifeJSON    `json:"op"`
}

func (s *Server) handleASN(r *http.Request) (any, *apiError) {
	raw := strings.TrimPrefix(strings.TrimPrefix(r.PathValue("n"), "AS"), "as")
	a, err := asn.Parse(raw)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad ASN %q", r.PathValue("n"))
	}
	lives, ok, apiErr := s.lookup(r.Context(), a)
	if apiErr != nil {
		return nil, apiErr
	}
	if !ok {
		return nil, errf(http.StatusNotFound, "AS%s has no recorded lives", a)
	}
	resp := asnResponse{ASN: a, Admin: []adminLifeJSON{}, Op: []opLifeJSON{}}
	for i, al := range lives.Admin {
		resp.Admin = append(resp.Admin, adminLifeJSON{
			ID:          fmt.Sprintf("AS%s:admin:%d", a, i),
			RIR:         al.RIR.Token(),
			CC:          al.CC,
			OrgID:       al.OpaqueID,
			RegDate:     al.RegDate.String(),
			Start:       al.Span.Start.String(),
			End:         al.Span.End.String(),
			Days:        al.Span.Days(),
			Open:        al.Open,
			Transferred: al.Transferred,
			Pieces:      al.Pieces,
			Category:    al.Category,
		})
	}
	for i, ol := range lives.Op {
		resp.Op = append(resp.Op, opLifeJSON{
			ID:       fmt.Sprintf("AS%s:op:%d", a, i),
			Start:    ol.Span.Start.String(),
			End:      ol.Span.End.String(),
			Days:     ol.Span.Days(),
			Category: ol.Category,
		})
	}
	return resp, nil
}

// lookup is the breaker-guarded, context-aware read of one ASN's block.
// The error taxonomy is deliberate: 503 + Retry-After while the breaker
// is open (the store may recover), 504 when the request deadline
// expired or the client left (the store is fine), 500 for an actual
// failed read (which feeds the breaker).
func (s *Server) lookup(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, *apiError) {
	if s.breaker != nil && !s.breaker.Allow() {
		return lifestore.ASNLives{}, false, retryf(http.StatusServiceUnavailable, 1,
			"lifestore circuit open after repeated read failures; retrying shortly")
	}
	ctx, sp := obs.StartSpan(ctx, "lifestore.lookup")
	lives, ok, err := s.src.LookupContext(ctx, a)
	if ok {
		sp.SetAttr("found", 1)
	}
	sp.End()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.chain.timeouts.Inc()
			if s.breaker != nil {
				s.breaker.OnNeutral()
			}
			return lifestore.ASNLives{}, false, errf(http.StatusGatewayTimeout,
				"deadline exceeded reading AS%s", a)
		}
		if s.breaker != nil {
			s.breaker.OnFailure()
		}
		return lifestore.ASNLives{}, false, errf(http.StatusInternalServerError, "reading AS%s: %v", a, err)
	}
	if s.breaker != nil {
		s.breaker.OnSuccess()
	}
	return lives, ok, nil
}

type seriesResponse struct {
	RIR    string   `json:"rir"`
	Start  string   `json:"start"`
	End    string   `json:"end"`
	Stride int      `json:"stride"`
	Days   []string `json:"days"`
	Admin  []int    `json:"admin"`
	Op     []int    `json:"op"`
}

func (s *Server) handleSeries(r *http.Request) (any, *apiError) {
	token := r.PathValue("r")
	series := s.src.Series()
	if series == nil {
		return nil, errf(http.StatusNotFound, "snapshot carries no alive series")
	}
	stride := s.defaultStride
	if q := r.URL.Query().Get("stride"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			return nil, errf(http.StatusBadRequest, "bad stride %q", q)
		}
		stride = v
	}
	sample := report.SampleAlive(series, stride)
	resp := seriesResponse{
		RIR:    token,
		Start:  series.Start.String(),
		End:    series.End.String(),
		Stride: stride,
		Days:   make([]string, len(sample.Days)),
	}
	for i, d := range sample.Days {
		resp.Days[i] = d.String()
	}
	if token == "all" {
		resp.Admin = sample.AdminAll
		resp.Op = sample.OpAll
		return resp, nil
	}
	rir, err := asn.ParseRIR(token)
	if err != nil {
		return nil, errf(http.StatusNotFound, "unknown registry %q (want afrinic, apnic, arin, lacnic, ripencc or all)", token)
	}
	resp.Admin = sample.Admin[rir]
	resp.Op = sample.Op[rir]
	return resp, nil
}

type taxonomyResponse struct {
	AdminComplete int     `json:"adminComplete"`
	AdminPartial  int     `json:"adminPartial"`
	AdminUnused   int     `json:"adminUnused"`
	OpComplete    int     `json:"opComplete"`
	OpPartial     int     `json:"opPartial"`
	OpOutside     int     `json:"opOutside"`
	AdminTotal    int     `json:"adminTotal"`
	OpTotal       int     `json:"opTotal"`
	CompleteShare float64 `json:"completeShare"`
	PartialShare  float64 `json:"partialShare"`
	UnusedShare   float64 `json:"unusedShare"`
}

func (s *Server) handleTaxonomy(*http.Request) (any, *apiError) {
	t := report.BuildTable3FromCounts(s.src.Taxonomy())
	return taxonomyResponse{
		AdminComplete: t.Counts.AdminComplete,
		AdminPartial:  t.Counts.AdminPartial,
		AdminUnused:   t.Counts.AdminUnused,
		OpComplete:    t.Counts.OpComplete,
		OpPartial:     t.Counts.OpPartial,
		OpOutside:     t.Counts.OpOutside,
		AdminTotal:    t.AdminTotal,
		OpTotal:       t.OpTotal,
		CompleteShare: t.CompleteShare,
		PartialShare:  t.PartialShare,
		UnusedShare:   t.UnusedShare,
	}, nil
}

type storeJSON struct {
	FormatVersion uint16  `json:"formatVersion"`
	Start         string  `json:"start"`
	End           string  `json:"end"`
	Timeout       int     `json:"timeout"`
	Visibility    int     `json:"visibility"`
	Policy        string  `json:"policy"`
	Wire          bool    `json:"wire"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	Chaos         bool    `json:"chaos"`
	ASNCount      int     `json:"asnCount"`
	AdminLives    int     `json:"adminLives"`
	OpLives       int     `json:"opLives"`
}

type cacheJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

type endpointJSON struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	TotalLatencyNs int64 `json:"totalLatencyNs"`
	// LatencyP50Ns / LatencyP99Ns are estimated from the latency
	// histogram — additive fields the pre-registry clients never saw.
	LatencyP50Ns int64 `json:"latencyP50Ns"`
	LatencyP99Ns int64 `json:"latencyP99Ns"`
}

// breakerJSON is the circuit breaker's live state in /v1/health.
type breakerJSON struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Trips               int64  `json:"trips"`
	ShortCircuits       int64  `json:"shortCircuits"`
}

// lifecycleJSON is the serving-resilience state in /v1/health — all
// additive fields the pre-hardening clients never saw.
type lifecycleJSON struct {
	InFlight       int64        `json:"inFlight"`
	MaxInFlight    int          `json:"maxInFlight"`
	Sheds          int64        `json:"sheds"`
	Panics         int64        `json:"panics"`
	Timeouts       int64        `json:"timeouts"`
	Breaker        *breakerJSON `json:"breaker,omitempty"`
	Generation     *GenInfo     `json:"generation,omitempty"`
	PrevGeneration *GenInfo     `json:"prevGeneration,omitempty"`
}

type healthResponse struct {
	Store     storeJSON               `json:"store"`
	Pipeline  pipeline.Health         `json:"pipeline"`
	Cache     cacheJSON               `json:"cache"`
	Endpoints map[string]endpointJSON `json:"endpoints"`
	Lifecycle lifecycleJSON           `json:"lifecycle"`
	// Ingest is the live-tail ingestion status when the server fronts a
	// streaming daemon (Options.Ingest); absent for cold snapshots.
	Ingest any `json:"ingest,omitempty"`
}

func (s *Server) handleHealth(*http.Request) (any, *apiError) {
	m := s.src.Meta()
	hits, misses, size, capacity := s.cache.stats()
	resp := healthResponse{
		Store: storeJSON{
			FormatVersion: m.FormatVersion,
			Start:         m.Start.String(),
			End:           m.End.String(),
			Timeout:       m.Timeout,
			Visibility:    m.Visibility,
			Policy:        m.Policy.String(),
			Wire:          m.Wire,
			Scale:         m.Scale,
			Seed:          m.Seed,
			Chaos:         m.Chaos,
			ASNCount:      m.ASNCount,
			AdminLives:    m.AdminLives,
			OpLives:       m.OpLives,
		},
		Pipeline:  s.src.Health(),
		Cache:     cacheJSON{Hits: hits, Misses: misses, Size: size, Capacity: capacity},
		Endpoints: make(map[string]endpointJSON, len(s.metrics)),
	}
	for label, em := range s.metrics {
		resp.Endpoints[label] = endpointJSON{
			Requests:       em.requests.Value(),
			Errors:         em.errors.Value(),
			TotalLatencyNs: int64(em.latency.Sum() * 1e9),
			LatencyP50Ns:   int64(em.latency.Quantile(0.5) * 1e9),
			LatencyP99Ns:   int64(em.latency.Quantile(0.99) * 1e9),
		}
	}
	cs := s.chain.Stats()
	resp.Lifecycle = lifecycleJSON{
		InFlight:    cs.InFlight,
		MaxInFlight: cs.MaxInFlight,
		Sheds:       cs.Sheds,
		Panics:      cs.Panics,
		Timeouts:    cs.Timeouts,
	}
	if s.breaker != nil {
		state, consec, trips, shorts := s.breaker.Snapshot()
		resp.Lifecycle.Breaker = &breakerJSON{
			State: state, ConsecutiveFailures: consec, Trips: trips, ShortCircuits: shorts,
		}
	}
	if sw, ok := s.src.(*Swappable); ok {
		cur, prev := sw.Generations()
		resp.Lifecycle.Generation = &cur
		resp.Lifecycle.PrevGeneration = prev
	}
	if s.ingest != nil {
		resp.Ingest = s.ingest()
	}
	return resp, nil
}

// handleHealthz is the liveness probe: the process is up and the
// handler chain runs. Deliberately free of backend reads — liveness
// must not flap with data trouble, or an orchestrator restarts a
// process whose snapshot merely needs a reload.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe: 200 while the server should
// receive traffic, 503 while the lifestore breaker is open (most
// lookups would be short-circuited anyway, so drain traffic elsewhere
// until the store recovers).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.breaker != nil {
		if state, _, _, _ := s.breaker.Snapshot(); state == "open" {
			retryAfterHeader(w, 1)
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("lifestore circuit open\n"))
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}

// handleReload runs a verified hot reload and reports the new
// generation. Failures leave the old generation serving and surface as
// 502: the snapshot on disk, not this server, is the broken party.
func (s *Server) handleReload(r *http.Request) (any, *apiError) {
	info, err := s.reloader.Reload(r.Context())
	if err != nil {
		return nil, errf(http.StatusBadGateway, "%v", err)
	}
	return info, nil
}

// Sharder is implemented by sources that can report a shard identity:
// *lifestore.Store, *lifestore.InMemory, and *Swappable (which forwards
// to whatever generation is serving).
type Sharder interface {
	Shard() *lifestore.ShardInfo
}

// shardRangeJSON is the shard's ASN range in /v1/shard.
type shardRangeJSON struct {
	Index int     `json:"index"`
	Count int     `json:"count"`
	Lo    asn.ASN `json:"lo"`
	Hi    asn.ASN `json:"hi"`
	Sum   string  `json:"sum"`
}

type shardResponse struct {
	Sharded    bool            `json:"sharded"`
	Shard      *shardRangeJSON `json:"shard,omitempty"`
	Generation int64           `json:"generation"`
	ASNCount   int             `json:"asnCount"`
	Replica    string          `json:"replica"`
}

// handleShard reports this process's shard identity — the router's
// handshake endpoint. An unsharded server answers sharded=false rather
// than 404, so a router probe can distinguish "not a shard" from "not a
// parallellives server at all".
func (s *Server) handleShard(*http.Request) (any, *apiError) {
	resp := shardResponse{Generation: s.generation(), ASNCount: s.src.ASNCount(), Replica: s.replica}
	if sh, ok := s.src.(Sharder); ok {
		if si := sh.Shard(); si != nil {
			resp.Sharded = true
			resp.Shard = &shardRangeJSON{
				Index: si.Index, Count: si.Count, Lo: si.Lo, Hi: si.Hi,
				Sum: fmt.Sprintf("%08x", si.Sum),
			}
		}
	}
	return resp, nil
}

// handleSlow serves the exemplar ring: the span trees of the slowest-N
// and last-N-failed requests this process has answered. Always 200 —
// an empty document just means nothing interesting happened yet (or
// capture is disabled, in which case capacity reads 0).
func (s *Server) handleSlow(*http.Request) (any, *apiError) {
	return s.exemplars.Snapshot(), nil
}

// handleStages serves the build's stage trace when the dataset was
// built with observability attached to the same Obs this server uses.
func (s *Server) handleStages(*http.Request) (any, *apiError) {
	summaries := s.obs.Tracer.Summary()
	if len(summaries) == 0 {
		return nil, errf(http.StatusNotFound,
			"no stage trace recorded: build the dataset with the same observability core this server was given")
	}
	return summaries, nil
}

// handleMetrics is the Prometheus scrape endpoint. The LRU's own
// counters are mirrored into the registry here, at scrape time, so the
// cache's hot path stays untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size, _ := s.cache.stats()
	s.cacheHits.Set(float64(hits))
	s.cacheMisses.Set(float64(misses))
	s.cacheEntries.Set(float64(size))
	s.runtime.Collect()
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WritePrometheus(w, s.obs.Registry); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
	}
}
