// Package serve exposes a computed ASN-lives dataset over a concurrent
// HTTP API. It answers from a lifestore — either a snapshot file opened
// cold (lifestore.Store) or a freshly captured in-memory snapshot
// (lifestore.InMemory) — so serving never re-runs the pipeline.
//
// Endpoints (all GET, all JSON):
//
//	/v1/asn/{n}        one ASN's parallel lives with taxonomy categories
//	/v1/rir/{r}/series daily alive counts for one registry (or "all"),
//	                   downsampled with ?stride=N days
//	/v1/taxonomy       the Table-3 taxonomy counts and shares
//	/v1/health         pipeline health + store metadata + cache and
//	                   per-endpoint request/latency counters
//	/v1/stages         the build's stage trace (404 when the dataset was
//	                   built without observability attached)
//	/metrics           Prometheus text exposition of the server's
//	                   registry: serve traffic, cache state, the build's
//	                   pipeline/health metrics, and anything else
//	                   published to the shared registry (lifestore reads,
//	                   pipeline counters)
//
// Responses for the data endpoints are cached in a fixed-size LRU keyed
// by path and query; /v1/health is always computed live.
//
// Endpoint counters live on an obs.Registry rather than ad-hoc atomics,
// so the same numbers surface identically on /v1/health (JSON, with
// derived p50/p99) and /metrics (Prometheus histogram).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/report"
)

// Registry metric names the server publishes.
const (
	// MetricRequests counts requests by endpoint pattern.
	MetricRequests = "parallellives_serve_requests_total"
	// MetricErrors counts handler failures by endpoint pattern.
	MetricErrors = "parallellives_serve_errors_total"
	// MetricLatency is the per-endpoint request latency histogram.
	MetricLatency = "parallellives_serve_request_seconds"
	// MetricCacheHits / MetricCacheMisses / MetricCacheEntries mirror the
	// LRU's own accounting into the registry at scrape time.
	MetricCacheHits    = "parallellives_serve_cache_hits"
	MetricCacheMisses  = "parallellives_serve_cache_misses"
	MetricCacheEntries = "parallellives_serve_cache_entries"
)

// Source is the query surface the server needs; *lifestore.Store and
// *lifestore.InMemory both implement it.
type Source interface {
	Meta() lifestore.Meta
	Health() pipeline.Health
	Taxonomy() core.TaxonomyCounts
	Series() *core.AliveSeries
	Lookup(a asn.ASN) (lifestore.ASNLives, bool, error)
	ASNCount() int
}

// Options configures a server.
type Options struct {
	// CacheSize is the LRU response-cache capacity in entries
	// (default 256; negative disables caching).
	CacheSize int
	// DefaultStride is the series downsampling default in days when the
	// request carries no ?stride (default 30).
	DefaultStride int
	// Obs supplies the observability core the server publishes to. Pass
	// the same Obs the pipeline built with and /metrics exposes build
	// and serve metrics side by side while /v1/stages serves the build
	// trace. Nil gets the server a private obs.New().
	Obs *obs.Obs
}

// Server is the HTTP API over one opened dataset. It is safe for
// concurrent use.
type Server struct {
	src           Source
	mux           *http.ServeMux
	cache         *lru
	obs           *obs.Obs
	metrics       map[string]*endpointMetrics
	cacheHits     *obs.Gauge
	cacheMisses   *obs.Gauge
	cacheEntries  *obs.Gauge
	defaultStride int
}

// endpointMetrics holds one endpoint's pre-resolved registry handles.
type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// latencyBuckets spans the in-process serving range: cache hits land in
// the low microseconds, cold block reads in the milliseconds.
func latencyBuckets() []float64 { return obs.ExpBuckets(0.000001, 10, 8) }

// New builds the server around a source.
func New(src Source, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = 256
	}
	if opts.CacheSize < 0 {
		opts.CacheSize = 0
	}
	if opts.DefaultStride <= 0 {
		opts.DefaultStride = 30
	}
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	reg := opts.Obs.Registry
	s := &Server{
		src:           src,
		mux:           http.NewServeMux(),
		cache:         newLRU(opts.CacheSize),
		obs:           opts.Obs,
		metrics:       make(map[string]*endpointMetrics),
		cacheHits:     reg.Gauge(MetricCacheHits, "LRU response-cache hits since start."),
		cacheMisses:   reg.Gauge(MetricCacheMisses, "LRU response-cache misses since start."),
		cacheEntries:  reg.Gauge(MetricCacheEntries, "LRU response-cache entries currently held."),
		defaultStride: opts.DefaultStride,
	}
	// Bridge the build's health report into the registry so a /metrics
	// scrape carries the dataset's provenance even when the server was
	// handed a cold snapshot rather than a live pipeline run.
	h := src.Health()
	h.Export(reg)
	s.mux.HandleFunc("GET /v1/asn/{n}", s.wrap("/v1/asn/{n}", true, s.handleASN))
	s.mux.HandleFunc("GET /v1/rir/{r}/series", s.wrap("/v1/rir/{r}/series", true, s.handleSeries))
	s.mux.HandleFunc("GET /v1/taxonomy", s.wrap("/v1/taxonomy", true, s.handleTaxonomy))
	s.mux.HandleFunc("GET /v1/health", s.wrap("/v1/health", false, s.handleHealth))
	s.mux.HandleFunc("GET /v1/stages", s.wrap("/v1/stages", false, s.handleStages))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is a handler failure with its HTTP status.
type apiError struct {
	code int
	msg  string
}

func errf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// wrap adds caching, metrics and JSON rendering around a handler. The
// registry handles are resolved once here, so the per-request cost is
// pure atomics.
func (s *Server) wrap(label string, cacheable bool, fn func(*http.Request) (any, *apiError)) http.HandlerFunc {
	reg := s.obs.Registry
	m := &endpointMetrics{
		requests: reg.CounterVec(MetricRequests, "API requests by endpoint pattern.", "endpoint").With(label),
		errors:   reg.CounterVec(MetricErrors, "API handler failures by endpoint pattern.", "endpoint").With(label),
		latency: reg.HistogramVec(MetricLatency, "API request latency by endpoint pattern.",
			latencyBuckets(), "endpoint").With(label),
	}
	s.metrics[label] = m
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() { m.latency.Observe(time.Since(start).Seconds()) }()
		m.requests.Inc()

		key := r.URL.Path
		if r.URL.RawQuery != "" {
			key += "?" + r.URL.RawQuery
		}
		if cacheable {
			if c, ok := s.cache.get(key); ok {
				writeBody(w, http.StatusOK, c)
				return
			}
		}
		payload, apiErr := fn(r)
		if apiErr != nil {
			m.errors.Inc()
			body, _ := json.Marshal(map[string]string{"error": apiErr.msg})
			writeBody(w, apiErr.code, cached{contentType: "application/json", body: body})
			return
		}
		body, err := json.Marshal(payload)
		if err != nil {
			m.errors.Inc()
			http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
			return
		}
		c := cached{contentType: "application/json", body: body}
		if cacheable {
			s.cache.put(key, c)
		}
		writeBody(w, http.StatusOK, c)
	}
}

func writeBody(w http.ResponseWriter, status int, c cached) {
	w.Header().Set("Content-Type", c.contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(c.body)))
	w.WriteHeader(status)
	w.Write(c.body)
}

// adminLifeJSON is one administrative life in an /v1/asn response.
type adminLifeJSON struct {
	ID          string        `json:"id"`
	RIR         string        `json:"rir"`
	CC          string        `json:"cc,omitempty"`
	OrgID       string        `json:"orgId,omitempty"`
	RegDate     string        `json:"regDate"`
	Start       string        `json:"start"`
	End         string        `json:"end"`
	Days        int           `json:"days"`
	Open        bool          `json:"open"`
	Transferred bool          `json:"transferred,omitempty"`
	Pieces      int           `json:"pieces"`
	Category    core.Category `json:"category"`
}

// opLifeJSON is one operational life in an /v1/asn response.
type opLifeJSON struct {
	ID       string        `json:"id"`
	Start    string        `json:"start"`
	End      string        `json:"end"`
	Days     int           `json:"days"`
	Category core.Category `json:"category"`
}

type asnResponse struct {
	ASN   asn.ASN         `json:"asn"`
	Admin []adminLifeJSON `json:"admin"`
	Op    []opLifeJSON    `json:"op"`
}

func (s *Server) handleASN(r *http.Request) (any, *apiError) {
	raw := strings.TrimPrefix(strings.TrimPrefix(r.PathValue("n"), "AS"), "as")
	a, err := asn.Parse(raw)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad ASN %q", r.PathValue("n"))
	}
	lives, ok, err := s.src.Lookup(a)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "reading AS%s: %v", a, err)
	}
	if !ok {
		return nil, errf(http.StatusNotFound, "AS%s has no recorded lives", a)
	}
	resp := asnResponse{ASN: a, Admin: []adminLifeJSON{}, Op: []opLifeJSON{}}
	for i, al := range lives.Admin {
		resp.Admin = append(resp.Admin, adminLifeJSON{
			ID:          fmt.Sprintf("AS%s:admin:%d", a, i),
			RIR:         al.RIR.Token(),
			CC:          al.CC,
			OrgID:       al.OpaqueID,
			RegDate:     al.RegDate.String(),
			Start:       al.Span.Start.String(),
			End:         al.Span.End.String(),
			Days:        al.Span.Days(),
			Open:        al.Open,
			Transferred: al.Transferred,
			Pieces:      al.Pieces,
			Category:    al.Category,
		})
	}
	for i, ol := range lives.Op {
		resp.Op = append(resp.Op, opLifeJSON{
			ID:       fmt.Sprintf("AS%s:op:%d", a, i),
			Start:    ol.Span.Start.String(),
			End:      ol.Span.End.String(),
			Days:     ol.Span.Days(),
			Category: ol.Category,
		})
	}
	return resp, nil
}

type seriesResponse struct {
	RIR    string   `json:"rir"`
	Start  string   `json:"start"`
	End    string   `json:"end"`
	Stride int      `json:"stride"`
	Days   []string `json:"days"`
	Admin  []int    `json:"admin"`
	Op     []int    `json:"op"`
}

func (s *Server) handleSeries(r *http.Request) (any, *apiError) {
	token := r.PathValue("r")
	series := s.src.Series()
	if series == nil {
		return nil, errf(http.StatusNotFound, "snapshot carries no alive series")
	}
	stride := s.defaultStride
	if q := r.URL.Query().Get("stride"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			return nil, errf(http.StatusBadRequest, "bad stride %q", q)
		}
		stride = v
	}
	sample := report.SampleAlive(series, stride)
	resp := seriesResponse{
		RIR:    token,
		Start:  series.Start.String(),
		End:    series.End.String(),
		Stride: stride,
		Days:   make([]string, len(sample.Days)),
	}
	for i, d := range sample.Days {
		resp.Days[i] = d.String()
	}
	if token == "all" {
		resp.Admin = sample.AdminAll
		resp.Op = sample.OpAll
		return resp, nil
	}
	rir, err := asn.ParseRIR(token)
	if err != nil {
		return nil, errf(http.StatusNotFound, "unknown registry %q (want afrinic, apnic, arin, lacnic, ripencc or all)", token)
	}
	resp.Admin = sample.Admin[rir]
	resp.Op = sample.Op[rir]
	return resp, nil
}

type taxonomyResponse struct {
	AdminComplete int     `json:"adminComplete"`
	AdminPartial  int     `json:"adminPartial"`
	AdminUnused   int     `json:"adminUnused"`
	OpComplete    int     `json:"opComplete"`
	OpPartial     int     `json:"opPartial"`
	OpOutside     int     `json:"opOutside"`
	AdminTotal    int     `json:"adminTotal"`
	OpTotal       int     `json:"opTotal"`
	CompleteShare float64 `json:"completeShare"`
	PartialShare  float64 `json:"partialShare"`
	UnusedShare   float64 `json:"unusedShare"`
}

func (s *Server) handleTaxonomy(*http.Request) (any, *apiError) {
	t := report.BuildTable3FromCounts(s.src.Taxonomy())
	return taxonomyResponse{
		AdminComplete: t.Counts.AdminComplete,
		AdminPartial:  t.Counts.AdminPartial,
		AdminUnused:   t.Counts.AdminUnused,
		OpComplete:    t.Counts.OpComplete,
		OpPartial:     t.Counts.OpPartial,
		OpOutside:     t.Counts.OpOutside,
		AdminTotal:    t.AdminTotal,
		OpTotal:       t.OpTotal,
		CompleteShare: t.CompleteShare,
		PartialShare:  t.PartialShare,
		UnusedShare:   t.UnusedShare,
	}, nil
}

type storeJSON struct {
	FormatVersion uint16  `json:"formatVersion"`
	Start         string  `json:"start"`
	End           string  `json:"end"`
	Timeout       int     `json:"timeout"`
	Visibility    int     `json:"visibility"`
	Policy        string  `json:"policy"`
	Wire          bool    `json:"wire"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	Chaos         bool    `json:"chaos"`
	ASNCount      int     `json:"asnCount"`
	AdminLives    int     `json:"adminLives"`
	OpLives       int     `json:"opLives"`
}

type cacheJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

type endpointJSON struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	TotalLatencyNs int64 `json:"totalLatencyNs"`
	// LatencyP50Ns / LatencyP99Ns are estimated from the latency
	// histogram — additive fields the pre-registry clients never saw.
	LatencyP50Ns int64 `json:"latencyP50Ns"`
	LatencyP99Ns int64 `json:"latencyP99Ns"`
}

type healthResponse struct {
	Store     storeJSON               `json:"store"`
	Pipeline  pipeline.Health         `json:"pipeline"`
	Cache     cacheJSON               `json:"cache"`
	Endpoints map[string]endpointJSON `json:"endpoints"`
}

func (s *Server) handleHealth(*http.Request) (any, *apiError) {
	m := s.src.Meta()
	hits, misses, size, capacity := s.cache.stats()
	resp := healthResponse{
		Store: storeJSON{
			FormatVersion: m.FormatVersion,
			Start:         m.Start.String(),
			End:           m.End.String(),
			Timeout:       m.Timeout,
			Visibility:    m.Visibility,
			Policy:        m.Policy.String(),
			Wire:          m.Wire,
			Scale:         m.Scale,
			Seed:          m.Seed,
			Chaos:         m.Chaos,
			ASNCount:      m.ASNCount,
			AdminLives:    m.AdminLives,
			OpLives:       m.OpLives,
		},
		Pipeline:  s.src.Health(),
		Cache:     cacheJSON{Hits: hits, Misses: misses, Size: size, Capacity: capacity},
		Endpoints: make(map[string]endpointJSON, len(s.metrics)),
	}
	for label, em := range s.metrics {
		resp.Endpoints[label] = endpointJSON{
			Requests:       em.requests.Value(),
			Errors:         em.errors.Value(),
			TotalLatencyNs: int64(em.latency.Sum() * 1e9),
			LatencyP50Ns:   int64(em.latency.Quantile(0.5) * 1e9),
			LatencyP99Ns:   int64(em.latency.Quantile(0.99) * 1e9),
		}
	}
	return resp, nil
}

// handleStages serves the build's stage trace when the dataset was
// built with observability attached to the same Obs this server uses.
func (s *Server) handleStages(*http.Request) (any, *apiError) {
	summaries := s.obs.Tracer.Summary()
	if len(summaries) == 0 {
		return nil, errf(http.StatusNotFound,
			"no stage trace recorded: build the dataset with the same observability core this server was given")
	}
	return summaries, nil
}

// handleMetrics is the Prometheus scrape endpoint. The LRU's own
// counters are mirrored into the registry here, at scrape time, so the
// cache's hot path stays untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size, _ := s.cache.stats()
	s.cacheHits.Set(float64(hits))
	s.cacheMisses.Set(float64(misses))
	s.cacheEntries.Set(float64(size))
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WritePrometheus(w, s.obs.Registry); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
	}
}
