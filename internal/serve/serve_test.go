package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"parallellives/internal/dates"
	"parallellives/internal/lifestore"
	"parallellives/internal/pipeline"
)

var (
	buildOnce sync.Once
	testSnap  *lifestore.Snapshot
	testImg   []byte
	buildErr  error
)

// fixtures runs the pipeline once per test binary and returns the
// captured snapshot plus its encoded bytes.
func fixtures(t testing.TB) (*lifestore.Snapshot, []byte) {
	t.Helper()
	buildOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		opts.World.Scale = 0.02
		opts.World.Seed = 1
		opts.World.Start = dates.MustParse("2004-01-01")
		opts.World.End = dates.MustParse("2005-12-31")
		ds, err := pipeline.Run(opts)
		if err != nil {
			buildErr = err
			return
		}
		testSnap = lifestore.Capture(ds)
		testImg, buildErr = lifestore.Encode(testSnap)
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return testSnap, testImg
}

func get(t testing.TB, h http.Handler, path string) (int, []byte) {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestColdStartMatchesFresh is the acceptance proof: a server over a
// snapshot opened from bytes on disk answers byte-for-byte identically
// to a server over the freshly computed dataset, without recomputing
// anything.
func TestColdStartMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, img := fixtures(t)
	st, err := lifestore.OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	cold := New(st, Options{})
	fresh := New(lifestore.NewInMemory(snap), Options{})

	paths := []string{
		"/v1/taxonomy",
		"/v1/rir/all/series",
		"/v1/rir/arin/series?stride=7",
		"/v1/rir/ripencc/series?stride=365",
	}
	for _, l := range snap.Lives {
		paths = append(paths, fmt.Sprintf("/v1/asn/%s", l.ASN))
	}
	for _, p := range paths {
		codeC, bodyC := get(t, cold, p)
		codeF, bodyF := get(t, fresh, p)
		if codeC != http.StatusOK || codeF != http.StatusOK {
			t.Fatalf("%s: status cold=%d fresh=%d", p, codeC, codeF)
		}
		if !bytes.Equal(bodyC, bodyF) {
			t.Fatalf("%s: cold-start body differs from fresh body:\ncold:  %s\nfresh: %s", p, bodyC, bodyF)
		}
	}
}

// TestASNEndpoint covers the AS-prefix alias and the error paths.
func TestASNEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)
	srv := New(lifestore.NewInMemory(snap), Options{})
	a := snap.Lives[0].ASN

	codePlain, bodyPlain := get(t, srv, fmt.Sprintf("/v1/asn/%s", a))
	codeAlias, bodyAlias := get(t, srv, fmt.Sprintf("/v1/asn/AS%s", a))
	if codePlain != http.StatusOK || codeAlias != http.StatusOK {
		t.Fatalf("lookup status: plain=%d alias=%d", codePlain, codeAlias)
	}
	if !bytes.Equal(bodyPlain, bodyAlias) {
		t.Fatal("AS-prefixed lookup differs from plain lookup")
	}
	var resp struct {
		Admin []struct {
			Category string `json:"category"`
		} `json:"admin"`
	}
	if err := json.Unmarshal(bodyPlain, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Admin) == 0 {
		t.Fatal("expected at least one admin life")
	}
	switch resp.Admin[0].Category {
	case "complete", "partial", "unused":
	default:
		t.Fatalf("admin category serialized as %q, want a taxonomy token", resp.Admin[0].Category)
	}

	if code, _ := get(t, srv, "/v1/asn/notanumber"); code != http.StatusBadRequest {
		t.Errorf("garbage ASN: got %d, want 400", code)
	}
	if code, _ := get(t, srv, "/v1/asn/4199999999"); code != http.StatusNotFound {
		t.Errorf("never-allocated ASN: got %d, want 404", code)
	}
	if code, _ := get(t, srv, "/v1/rir/mars/series"); code != http.StatusNotFound {
		t.Errorf("unknown registry: got %d, want 404", code)
	}
	if code, _ := get(t, srv, "/v1/rir/all/series?stride=0"); code != http.StatusBadRequest {
		t.Errorf("zero stride: got %d, want 400", code)
	}
}

// TestCacheCounters pins the exact LRU accounting surfaced on
// /v1/health: first hit of a cacheable path is a miss, the repeat is a
// hit, and /v1/health itself never enters the cache.
func TestCacheCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)
	srv := New(lifestore.NewInMemory(snap), Options{CacheSize: 2})

	get(t, srv, "/v1/taxonomy")
	get(t, srv, "/v1/taxonomy")
	get(t, srv, "/v1/rir/all/series")

	_, body := get(t, srv, "/v1/health")
	var h struct {
		Cache struct {
			Hits     uint64 `json:"hits"`
			Misses   uint64 `json:"misses"`
			Size     int    `json:"size"`
			Capacity int    `json:"capacity"`
		} `json:"cache"`
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Cache.Hits != 1 || h.Cache.Misses != 2 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/2", h.Cache.Hits, h.Cache.Misses)
	}
	if h.Cache.Size != 2 || h.Cache.Capacity != 2 {
		t.Errorf("cache size=%d capacity=%d, want 2/2", h.Cache.Size, h.Cache.Capacity)
	}
	if got := h.Endpoints["/v1/taxonomy"].Requests; got != 2 {
		t.Errorf("taxonomy requests=%d, want 2", got)
	}
	if got := h.Endpoints["/v1/health"].Requests; got != 1 {
		t.Errorf("health requests=%d, want 1", got)
	}
}

// TestCachedBodyIdentical makes sure a cache hit serves the same bytes
// as the original computation.
func TestCachedBodyIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)
	srv := New(lifestore.NewInMemory(snap), Options{})
	_, first := get(t, srv, "/v1/taxonomy")
	_, second := get(t, srv, "/v1/taxonomy")
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit returned different bytes")
	}
}

// TestConcurrentHammer drives all endpoints from 64 goroutines; run
// under -race this is the concurrency acceptance check. The tiny cache
// forces constant eviction alongside the hits.
func TestConcurrentHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, img := fixtures(t)
	st, err := lifestore.OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Options{CacheSize: 4})

	paths := []string{
		"/v1/taxonomy",
		"/v1/rir/all/series",
		"/v1/rir/arin/series?stride=90",
		"/v1/health",
		"/v1/asn/notanumber", // keep the error path racing too
	}
	for _, l := range snap.Lives {
		paths = append(paths, fmt.Sprintf("/v1/asn/%s", l.ASN))
	}

	const goroutines = 64
	const perGoroutine = 50
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				p := paths[(g*perGoroutine+i)%len(paths)]
				code, body := get(t, srv, p)
				if code != http.StatusOK && code != http.StatusBadRequest {
					errs <- fmt.Errorf("%s: status %d", p, code)
					return
				}
				if len(body) == 0 {
					errs <- fmt.Errorf("%s: empty body", p)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	_, body := get(t, srv, "/v1/health")
	var h struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, em := range h.Endpoints {
		total += em.Requests
	}
	if want := int64(goroutines*perGoroutine + 1); total != want {
		t.Errorf("endpoint counters total %d requests, want %d", total, want)
	}
}
