package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
)

// TestMetricsExposition is the /metrics acceptance check: the scrape
// must be valid Prometheus text and must carry serve traffic,
// lifestore read and pipeline-build (health bridge) metrics together.
func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, img := fixtures(t)
	st, err := lifestore.OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	st.Instrument(o.Registry)
	srv := New(st, Options{CacheSize: 4, Obs: o})

	get(t, srv, fmt.Sprintf("/v1/asn/%s", snap.Lives[0].ASN)) // lifestore hit
	get(t, srv, "/v1/asn/4199999999")                         // lifestore miss
	get(t, srv, "/v1/taxonomy")
	get(t, srv, "/v1/taxonomy") // cache hit

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}
	body := rec.Body.String()

	// Every non-comment line must be `<series> <float>`. Label values
	// may themselves contain braces (endpoint patterns like /v1/asn/{n}),
	// so the label block match is lazy up to the final close brace.
	seriesRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})?$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		if !seriesRe.MatchString(line[:i]) {
			t.Errorf("malformed series name: %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}

	for _, want := range []string{
		`parallellives_serve_requests_total{endpoint="/v1/asn/{n}"} 2`,
		`parallellives_serve_requests_total{endpoint="/v1/taxonomy"} 2`,
		`parallellives_serve_errors_total{endpoint="/v1/asn/{n}"} 1`,
		`parallellives_serve_cache_hits 1`,
		`parallellives_lifestore_lookups_total{outcome="hit"} 1`,
		`parallellives_lifestore_lookups_total{outcome="miss"} 1`,
		"parallellives_pipeline_health_days_processed",
		`parallellives_pipeline_health_mrt{field="records"}`,
		"parallellives_serve_request_seconds_bucket",
		"parallellives_lifestore_lookup_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStagesEndpoint pins both sides of /v1/stages: 404 when the obs
// core carries no trace, the span tree as JSON when it does.
func TestStagesEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)

	bare := New(lifestore.NewInMemory(snap), Options{})
	if code, _ := get(t, bare, "/v1/stages"); code != http.StatusNotFound {
		t.Errorf("stages without a trace: got %d, want 404", code)
	}

	o := obs.New()
	_, sp := obs.StartSpan(obs.WithTracer(t.Context(), o.Tracer), "pipeline.run")
	sp.SetAttr(obs.AttrOut, 7)
	sp.End()
	traced := New(lifestore.NewInMemory(snap), Options{Obs: o})
	code, body := get(t, traced, "/v1/stages")
	if code != http.StatusOK {
		t.Fatalf("stages with a trace: got %d, want 200", code)
	}
	var summaries []obs.SpanSummary
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 1 || summaries[0].Name != "pipeline.run" || summaries[0].Attrs["out"] != 7 {
		t.Fatalf("unexpected stage summary: %+v", summaries)
	}
}

// TestHealthLatencyQuantiles checks the additive p50/p99 fields derive
// from the same histogram the request counters live on.
func TestHealthLatencyQuantiles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap, _ := fixtures(t)
	srv := New(lifestore.NewInMemory(snap), Options{})
	for i := 0; i < 5; i++ {
		get(t, srv, "/v1/taxonomy")
	}
	_, body := get(t, srv, "/v1/health")
	var h struct {
		Endpoints map[string]struct {
			Requests       int64 `json:"requests"`
			TotalLatencyNs int64 `json:"totalLatencyNs"`
			LatencyP50Ns   int64 `json:"latencyP50Ns"`
			LatencyP99Ns   int64 `json:"latencyP99Ns"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	tax := h.Endpoints["/v1/taxonomy"]
	if tax.Requests != 5 {
		t.Fatalf("taxonomy requests = %d, want 5", tax.Requests)
	}
	if tax.TotalLatencyNs <= 0 || tax.LatencyP50Ns <= 0 || tax.LatencyP99Ns <= 0 {
		t.Errorf("latency fields not populated: %+v", tax)
	}
	if tax.LatencyP99Ns < tax.LatencyP50Ns {
		t.Errorf("p99 %dns < p50 %dns", tax.LatencyP99Ns, tax.LatencyP50Ns)
	}
}
