package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/lifestore"
)

// tinyASNs are the ASNs tinySnapshot holds lives for.
var tinyASNs = []asn.ASN{64496, 64500, 65550}

// tinySnapshot hand-builds a small but fully featured snapshot — admin
// and op lives for a few ASNs — without running the pipeline, so the
// lifecycle and chaos tests stay fast enough for -short runs.
func tinySnapshot(seed int64) *lifestore.Snapshot {
	day := dates.MustParse
	snap := &lifestore.Snapshot{
		Meta: lifestore.Meta{
			FormatVersion: lifestore.FormatVersion,
			Start:         day("2004-01-01"),
			End:           day("2006-01-01"),
			Timeout:       365,
			Visibility:    2,
			Scale:         0.01,
			Seed:          seed,
		},
		Taxonomy: core.TaxonomyCounts{AdminComplete: 2, AdminPartial: 1, OpComplete: 2, OpPartial: 1},
	}
	for i, a := range tinyASNs {
		start := day("2004-03-01").AddDays(40 * i)
		snap.Lives = append(snap.Lives, lifestore.ASNLives{
			ASN: a,
			Admin: []lifestore.AdminLife{{
				RIR:      asn.RIPENCC,
				CC:       "NL",
				OpaqueID: fmt.Sprintf("org-%d-%d", seed, i),
				RegDate:  start,
				Span:     intervals.Interval{Start: start, End: start.AddDays(300)},
				Open:     i == 2,
				Pieces:   1,
				Category: core.CatComplete,
			}},
			Op: []lifestore.OpLife{{
				Span:     intervals.Interval{Start: start.AddDays(10), End: start.AddDays(250)},
				Category: core.CatPartial,
			}},
		})
	}
	snap.Meta.ASNCount = len(snap.Lives)
	snap.Meta.AdminLives = len(snap.Lives)
	snap.Meta.OpLives = len(snap.Lives)
	return snap
}

// tinyImage encodes tinySnapshot(seed).
func tinyImage(tb testing.TB, seed int64) []byte {
	tb.Helper()
	img, err := lifestore.Encode(tinySnapshot(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// tinyStore opens tinySnapshot(seed) as a cold Store.
func tinyStore(tb testing.TB, seed int64) *lifestore.Store {
	tb.Helper()
	st, err := lifestore.OpenBytes(tinyImage(tb, seed))
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// newRequest pairs a recorder with a request, for tests that need to
// inspect response headers.
func newRequest(method, path string) (*http.Request, *httptest.ResponseRecorder) {
	return httptest.NewRequest(method, path, nil), httptest.NewRecorder()
}

// blockingSource parks every lookup until release is closed (or the
// request context expires), letting tests hold requests in flight.
type blockingSource struct {
	Source
	entered chan struct{} // receives one signal per lookup that parked
	release chan struct{}
}

func newBlockingSource(src Source) *blockingSource {
	return &blockingSource{
		Source:  src,
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *blockingSource) LookupContext(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return b.Source.LookupContext(ctx, a)
	case <-ctx.Done():
		return lifestore.ASNLives{}, false, ctx.Err()
	}
}

// failingSource fails every lookup with a non-context error while
// broken is set — the shape that must feed the circuit breaker.
type failingSource struct {
	Source
	broken atomic.Bool
}

func (f *failingSource) LookupContext(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, error) {
	if f.broken.Load() {
		return lifestore.ASNLives{}, false, fmt.Errorf("injected backend failure for AS%s", a)
	}
	return f.Source.LookupContext(ctx, a)
}

// slowSource delays lookups by delay (honouring cancellation), for
// graceful-shutdown and deadline tests.
type slowSource struct {
	Source
	delay time.Duration
}

func (s *slowSource) LookupContext(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return lifestore.ASNLives{}, false, ctx.Err()
	}
	return s.Source.LookupContext(ctx, a)
}

// panicSource blows up on taxonomy reads, for the recovery middleware.
type panicSource struct{ Source }

func (panicSource) Taxonomy() core.TaxonomyCounts { panic("injected handler panic") }

// recordCloser flags when its Close ran, for generation-retirement
// tests.
type recordCloser struct{ closed atomic.Bool }

func (c *recordCloser) Close() error { c.closed.Store(true); return nil }

var _ io.Closer = (*recordCloser)(nil)
