package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
)

// GenInfo describes one snapshot generation a Swappable has served.
type GenInfo struct {
	// Gen is the monotone generation number, starting at 1.
	Gen int64 `json:"gen"`
	// Source names where the generation came from (a snapshot path).
	Source string `json:"source"`
	// ASNCount is the generation's headline size.
	ASNCount int `json:"asnCount"`
}

// generation is one refcounted source: inflight counts the requests
// currently borrowing it, and its closer runs only after the generation
// has been retired and the count has drained to zero.
type generation struct {
	src      Source
	closer   io.Closer
	info     GenInfo
	inflight atomic.Int64
}

// Swappable is a Source whose backing source can be replaced atomically
// while requests are in flight. Readers acquire the current generation
// per call; Swap installs a new generation instantly and retires the
// old one in the background, closing it only once its last borrowed
// call returns — a hot reload never yanks a reader out from under a
// request, and never blocks serving while the new snapshot loads.
type Swappable struct {
	cur  atomic.Pointer[generation]
	gens atomic.Int64
	prev atomic.Pointer[GenInfo] // most recently retired generation
}

// NewSwappable wraps the initial source. closer may be nil (in-memory
// sources); source names the origin for /v1/health.
func NewSwappable(src Source, closer io.Closer, source string) *Swappable {
	sw := &Swappable{}
	sw.install(src, closer, source)
	return sw
}

// install builds the next generation and makes it current, returning
// the generation it replaced (nil on first install).
func (sw *Swappable) install(src Source, closer io.Closer, source string) *generation {
	g := &generation{src: src, closer: closer,
		info: GenInfo{Gen: sw.gens.Add(1), Source: source, ASNCount: src.ASNCount()}}
	return sw.cur.Swap(g)
}

// Swap atomically replaces the serving source and retires the old
// generation: its info becomes the "previous" record and its closer
// fires once in-flight borrowers drain. Returns the new generation's
// info.
func (sw *Swappable) Swap(src Source, closer io.Closer, source string) GenInfo {
	old := sw.install(src, closer, source)
	cur := sw.cur.Load().info
	if old != nil {
		info := old.info
		sw.prev.Store(&info)
		go func() {
			for old.inflight.Load() > 0 {
				time.Sleep(time.Millisecond)
			}
			if old.closer != nil {
				old.closer.Close()
			}
		}()
	}
	return cur
}

// Generations returns the current generation and, when a swap has
// happened, the previously served one.
func (sw *Swappable) Generations() (cur GenInfo, prev *GenInfo) {
	return sw.cur.Load().info, sw.prev.Load()
}

// acquire borrows the current generation. The release must run when the
// borrowed call is done. The retry loop closes the swap race: if a Swap
// lands between loading the pointer and incrementing the count, the
// count may have been observed at zero and the closer may already have
// fired, so the borrow is abandoned and retried on the new current.
func (sw *Swappable) acquire() (*generation, func()) {
	for {
		g := sw.cur.Load()
		g.inflight.Add(1)
		if sw.cur.Load() == g {
			return g, func() { g.inflight.Add(-1) }
		}
		g.inflight.Add(-1)
	}
}

// Source implementation: every method borrows the current generation
// for exactly the duration of the delegated call. Returned values never
// alias the underlying reader (blocks decode into fresh memory), so
// they stay valid after release.

func (sw *Swappable) Meta() lifestore.Meta {
	g, release := sw.acquire()
	defer release()
	return g.src.Meta()
}

func (sw *Swappable) Health() pipeline.Health {
	g, release := sw.acquire()
	defer release()
	return g.src.Health()
}

func (sw *Swappable) Taxonomy() core.TaxonomyCounts {
	g, release := sw.acquire()
	defer release()
	return g.src.Taxonomy()
}

func (sw *Swappable) Series() *core.AliveSeries {
	g, release := sw.acquire()
	defer release()
	return g.src.Series()
}

func (sw *Swappable) LookupContext(ctx context.Context, a asn.ASN) (lifestore.ASNLives, bool, error) {
	g, release := sw.acquire()
	defer release()
	return g.src.LookupContext(ctx, a)
}

func (sw *Swappable) ASNCount() int {
	g, release := sw.acquire()
	defer release()
	return g.src.ASNCount()
}

// Shard forwards the serving generation's shard identity when the
// underlying source reports one, implementing Sharder on behalf of
// whatever is currently installed.
func (sw *Swappable) Shard() *lifestore.ShardInfo {
	g, release := sw.acquire()
	defer release()
	if sh, ok := g.src.(Sharder); ok {
		return sh.Shard()
	}
	return nil
}

// OpenFunc opens and fully verifies a candidate source for a reload.
// It must not return a partially verified source: whatever it hands
// back is installed as the serving generation.
type OpenFunc func(ctx context.Context) (src Source, closer io.Closer, source string, err error)

// FileOpener is the standard OpenFunc for snapshot files: open the
// path, verify every block (section checksum plus each indexed block's
// CRC and decode), and instrument lookups into reg (nil skips
// instrumentation). The open-and-verify happens entirely before the
// swap, so the old generation serves untouched through a slow or failed
// reload.
func FileOpener(path string, reg *obs.Registry) OpenFunc {
	return func(ctx context.Context) (Source, io.Closer, string, error) {
		st, err := lifestore.OpenObserved(path, reg)
		if err != nil {
			return nil, nil, "", err
		}
		if err := ctx.Err(); err != nil {
			st.Close()
			return nil, nil, "", err
		}
		if err := st.VerifyBlocks(); err != nil {
			st.Close()
			return nil, nil, "", fmt.Errorf("verifying %s: %w", path, err)
		}
		return st, st, path, nil
	}
}

// MappedFileOpener is FileOpener over a memory-mapped open: same
// verification, but lookups read the page cache instead of issuing
// pread syscalls, and N processes over one snapshot directory share
// one set of pages.
func MappedFileOpener(path string, reg *obs.Registry) OpenFunc {
	return func(ctx context.Context) (Source, io.Closer, string, error) {
		st, err := lifestore.OpenMappedObserved(path, reg)
		if err != nil {
			return nil, nil, "", err
		}
		if err := ctx.Err(); err != nil {
			st.Close()
			return nil, nil, "", err
		}
		if err := st.VerifyBlocks(); err != nil {
			st.Close()
			return nil, nil, "", fmt.Errorf("verifying %s: %w", path, err)
		}
		return st, st, path, nil
	}
}

// Reloader performs verified hot reloads into a Swappable. Reloads are
// serialized: a second reload arriving while one is in flight waits its
// turn rather than racing the swap.
type Reloader struct {
	sw   *Swappable
	open OpenFunc

	mu     sync.Mutex
	onSwap []func()

	reloads  *obs.CounterVec
	genGauge *obs.Gauge
}

// NewReloader wires a reloader to its swappable and opener, publishing
// reload outcomes and the serving generation to reg.
func NewReloader(sw *Swappable, open OpenFunc, reg *obs.Registry) *Reloader {
	r := &Reloader{
		sw: sw, open: open,
		reloads: reg.CounterVec(MetricReloads,
			"Hot snapshot reloads by outcome.", "outcome"),
		genGauge: reg.Gauge(MetricGeneration,
			"Snapshot generation currently serving (increments per successful reload)."),
	}
	cur, _ := sw.Generations()
	r.genGauge.Set(float64(cur.Gen))
	return r
}

// OnSwap registers a hook run after every successful swap, while the
// reload lock is still held. The server uses it to flush the response
// cache: cached bodies from the old generation must not outlive it.
func (r *Reloader) OnSwap(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSwap = append(r.onSwap, fn)
}

// Reload opens and verifies a fresh source, swaps it in, and returns
// the new generation. On any failure the old generation keeps serving
// and the error is returned — a reload can never make a healthy server
// worse.
func (r *Reloader) Reload(ctx context.Context) (GenInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, closer, source, err := r.open(ctx)
	if err != nil {
		r.reloads.With("error").Inc()
		return GenInfo{}, fmt.Errorf("serve: reload rejected: %w", err)
	}
	info := r.sw.Swap(src, closer, source)
	r.genGauge.Set(float64(info.Gen))
	r.reloads.With("ok").Inc()
	for _, fn := range r.onSwap {
		fn()
	}
	return info, nil
}
