package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
)

// TestChaosSoak is the serving-resilience acceptance test: the server
// runs over a faults.FlakyReaderAt-backed store while concurrent
// clients hammer every endpoint, a fault window opens and closes, and a
// hot reload fires mid-soak. The contract being proven:
//
//   - zero corrupt 200 bodies — every 200 on a deterministic path is
//     byte-identical to a pristine reference server's answer, whatever
//     the injector did to the underlying reads (CRCs catch the flips);
//   - failures surface only as the explicit taxonomy (500 read failure,
//     503 shed/short-circuit, 404 miss), never as anything else;
//   - the breaker trips during the fault window and recovers after it;
//   - the mid-soak reload swaps generations without a single dropped or
//     failed request;
//   - shed rate stays bounded and the whole story is on /metrics.
//
// Everything is sized to run in a -short -race test.
func TestChaosSoak(t *testing.T) {
	img := tinyImage(t, 1)
	inj := faults.NewInjector(faults.Plan{
		Seed:            42,
		ReadAtErrorRate: 0.5, // half the block reads fail outright...
		ReadAtFlipRate:  1.0, // ...and every surviving one is bit-flipped
	})
	flaky := inj.WrapReaderAt(1, bytes.NewReader(img))
	flaky.SetEnabled(false) // open the eager sections cleanly
	st, err := lifestore.NewStore(flaky)
	if err != nil {
		t.Fatal(err)
	}

	// The reload target: a pristine copy of the same snapshot on disk.
	path := filepath.Join(t.TempDir(), "lives.snap")
	if err := lifestore.SaveSnapshot(tinySnapshot(1), path); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	sw := NewSwappable(st, nil, "chaos-gen1")
	rel := NewReloader(sw, FileOpener(path, o.Registry), o.Registry)
	srv := New(sw, Options{
		Obs:      o,
		Reloader: rel,
		// No response cache: every 200 must come from a real read, so a
		// cached body cannot mask corruption.
		CacheSize:        -1,
		MaxInFlight:      8,
		BreakerThreshold: 4,
		BreakerCooldown:  40 * time.Millisecond,
	})

	// Reference bodies from a server over the same data with no faults.
	ref := New(lifestore.NewInMemory(tinySnapshot(1)), Options{Obs: obs.New(), CacheSize: -1})
	deterministic := []string{"/v1/taxonomy"}
	for _, a := range tinyASNs {
		deterministic = append(deterministic, fmt.Sprintf("/v1/asn/%s", a))
	}
	expected := make(map[string][]byte, len(deterministic))
	for _, p := range deterministic {
		code, body := get(t, ref, p)
		if code != http.StatusOK {
			t.Fatalf("reference %s: status %d", p, code)
		}
		expected[p] = body
	}
	paths := append([]string{"/v1/health", "/readyz"}, deterministic...)

	var (
		n200, n404, n500, n503, n504 atomic.Int64
		nOther, corrupt              atomic.Int64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 16
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(g+i)%len(paths)]
				code, body := get(t, srv, p)
				switch code {
				case http.StatusOK:
					n200.Add(1)
					if want, ok := expected[p]; ok && !bytes.Equal(body, want) {
						corrupt.Add(1)
					} else if !ok && p == "/v1/health" && !json.Valid(body) {
						corrupt.Add(1)
					}
				case http.StatusNotFound:
					n404.Add(1)
				case http.StatusInternalServerError:
					n500.Add(1)
				case http.StatusServiceUnavailable:
					n503.Add(1)
				case http.StatusGatewayTimeout:
					n504.Add(1)
				default:
					nOther.Add(1)
				}
			}
		}(g)
	}

	// Phase 1: clean warmup.
	time.Sleep(30 * time.Millisecond)
	// Phase 2: the fault window. Every block read now errors or comes
	// back bit-flipped; the breaker must trip. The window is
	// condition-based, not a fixed sleep: on a heavily loaded machine
	// the worker goroutines may get scheduled for only slivers of a
	// fixed window, so it stays open until the chaos has demonstrably
	// reached the store and tripped the breaker (bounded; the
	// assertions below report the failure if it never does).
	flaky.SetEnabled(true)
	windowDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(windowDeadline) {
		if v, ok := o.Registry.Sum(MetricBreakerTrips); ok && v >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // a few more faulted reads land as 500s
	// Phase 3: faults clear; after the cooldown a probe closes the
	// breaker again.
	flaky.SetEnabled(false)
	time.Sleep(150 * time.Millisecond)
	// Phase 4: hot reload mid-soak onto the pristine file-backed copy.
	if _, err := rel.Reload(context.Background()); err != nil {
		t.Fatalf("mid-soak reload: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := n200.Load() + n404.Load() + n500.Load() + n503.Load() + n504.Load()
	t.Logf("soak: %d requests (200=%d 404=%d 500=%d 503=%d 504=%d), injected errs=%d flips=%d",
		total, n200.Load(), n404.Load(), n500.Load(), n503.Load(), n504.Load(),
		flaky.Errs(), flaky.Flips())

	if got := corrupt.Load(); got != 0 {
		t.Errorf("%d corrupt 200 bodies served — the zero-corruption contract is broken", got)
	}
	if got := nOther.Load(); got != 0 {
		t.Errorf("%d responses outside the declared status taxonomy", got)
	}
	if n200.Load() == 0 {
		t.Error("no successful responses at all: the soak never actually served")
	}
	if n500.Load() == 0 {
		t.Error("no 500s during the fault window: chaos never reached the store")
	}
	if flaky.Errs() == 0 && flaky.Flips() == 0 {
		t.Error("injector reports zero faults: the soak tested nothing")
	}

	// The breaker tripped during the window and is closed again now: the
	// reloaded generation is clean, so one more lookup proves recovery.
	if code, body := get(t, srv, "/v1/asn/64496"); code != http.StatusOK ||
		!bytes.Equal(body, expected["/v1/asn/64496"]) {
		t.Errorf("post-soak lookup: status %d, want pristine 200", code)
	}
	lc := healthLifecycle(t, srv)
	if lc.Breaker == nil || lc.Breaker.Trips == 0 {
		t.Error("breaker never tripped during the fault window")
	}
	if lc.Breaker != nil && lc.Breaker.State != "closed" {
		t.Errorf("breaker state after recovery = %s, want closed", lc.Breaker.State)
	}
	if lc.Generation == nil || lc.Generation.Gen != 2 {
		t.Errorf("generation after mid-soak reload = %+v, want gen 2", lc.Generation)
	}
	if lc.PrevGeneration == nil || lc.PrevGeneration.Gen != 1 {
		t.Errorf("prevGeneration = %+v, want gen 1", lc.PrevGeneration)
	}
	if lc.Sheds > 0 && float64(lc.Sheds) > 0.9*float64(total) {
		t.Errorf("shed rate unbounded: %d of %d requests shed", lc.Sheds, total)
	}

	// The whole story lands on /metrics.
	_, metrics := get(t, srv, "/metrics")
	for _, name := range []string{
		MetricSheds, MetricBreakerState, MetricBreakerTrips,
		MetricBreakerShortCircuits, MetricReloads, MetricGeneration,
		MetricInFlight, MetricTimeouts, MetricPanics,
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if v, ok := o.Registry.Sum(MetricReloads); !ok || v < 1 {
		t.Errorf("reload counter sum = %v (ok=%v), want >= 1", v, ok)
	}
}
