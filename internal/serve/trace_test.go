package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"parallellives/internal/obs"
)

// seqIDs is a deterministic span/trace ID source for tests.
func seqIDs() obs.IDSource {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("%016x", n)
	}
}

// TestTracePropagation pins the serve half of the trace-context wire
// format: a request carrying traceparent gets its span tree back in the
// X-Parallellives-Span header, joined to the caller's trace.
func TestTracePropagation(t *testing.T) {
	srv := New(tinyStore(t, 1), Options{Obs: obs.New(), SpanIDs: seqIDs()})
	parent := obs.SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}

	req, rec := newRequest("GET", "/v1/asn/64496")
	req.Header.Set(obs.TraceparentHeader, parent.Traceparent())
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("traced request: status %d", rec.Code)
	}
	hdr := rec.Header().Get(obs.SpanHeader)
	if hdr == "" {
		t.Fatalf("traced response missing %s header", obs.SpanHeader)
	}
	var sum obs.SpanSummary
	if err := json.Unmarshal([]byte(hdr), &sum); err != nil {
		t.Fatalf("span header is not SpanSummary JSON: %v\n%s", err, hdr)
	}
	if sum.TraceID != parent.TraceID {
		t.Errorf("span joined trace %q, want %q", sum.TraceID, parent.TraceID)
	}
	if sum.ParentID != parent.SpanID {
		t.Errorf("span parent %q, want %q", sum.ParentID, parent.SpanID)
	}
	if sum.Name != "serve /v1/asn/{n}" || sum.SpanID == "" {
		t.Errorf("root span = %+v", sum)
	}
	if sum.Attrs["status"] != 200 {
		t.Errorf("status attr = %d, want 200", sum.Attrs["status"])
	}
	found := false
	for _, c := range sum.Children {
		if c.Name == "lifestore.lookup" {
			found = true
		}
	}
	if !found {
		t.Errorf("span tree missing the lifestore.lookup child: %+v", sum)
	}
}

// TestUntracedAndMalformedTraceparent pins that requests without valid
// trace context are answered without the span header and byte-identical
// bodies — tracing must be strictly additive.
func TestUntracedAndMalformedTraceparent(t *testing.T) {
	srv := New(tinyStore(t, 1), Options{Obs: obs.New()})

	_, plainBody := get(t, srv, "/v1/asn/64496")
	for _, tp := range []string{"", "garbage", "00-zz-zz-01"} {
		req, rec := newRequest("GET", "/v1/asn/64496")
		if tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("traceparent=%q: status %d", tp, rec.Code)
		}
		if h := rec.Header().Get(obs.SpanHeader); h != "" {
			t.Errorf("traceparent=%q: unexpected span header %q", tp, h)
		}
		if rec.Body.String() != string(plainBody) {
			t.Errorf("traceparent=%q changed the body", tp)
		}
	}
}

// TestSlowEndpoint pins /v1/debug/slow: requests land in the exemplar
// ring with their span trees, and a server-side failure shows on the
// error side.
func TestSlowEndpoint(t *testing.T) {
	srv := New(tinyStore(t, 1), Options{Obs: obs.New(), ExemplarCapacity: 8})
	for i := 0; i < 5; i++ {
		get(t, srv, "/v1/asn/64496")
	}
	get(t, srv, "/v1/taxonomy")

	code, body := get(t, srv, "/v1/debug/slow")
	if code != 200 {
		t.Fatalf("/v1/debug/slow: status %d", code)
	}
	var snap obs.ExemplarSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("slow body: %v", err)
	}
	if snap.Capacity != 8 || snap.Seen < 6 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
	if len(snap.Slowest) == 0 {
		t.Fatalf("no slow exemplars captured")
	}
	e := snap.Slowest[0]
	if e.Trace.Name == "" || e.DurationNs <= 0 || e.Status != 200 {
		t.Errorf("exemplar = %+v", e)
	}
	if e.TraceID == "" {
		t.Errorf("exemplar missing trace ID")
	}

	// A panic becomes a 500 exemplar on the error side.
	perr := New(panicSource{tinyStore(t, 1)}, Options{Obs: obs.New(), ExemplarCapacity: 8})
	get(t, perr, "/v1/taxonomy")
	_, body = get(t, perr, "/v1/debug/slow")
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Errors) != 1 || snap.Errors[0].Status != 500 {
		t.Fatalf("error exemplars = %+v", snap.Errors)
	}
}

// TestExemplarsDisabled pins that a negative capacity turns capture off
// without disturbing serving.
func TestExemplarsDisabled(t *testing.T) {
	srv := New(tinyStore(t, 1), Options{Obs: obs.New(), ExemplarCapacity: -1})
	if code, _ := get(t, srv, "/v1/asn/64496"); code != 200 {
		t.Fatalf("serving with exemplars disabled failed")
	}
	code, body := get(t, srv, "/v1/debug/slow")
	if code != 200 {
		t.Fatalf("/v1/debug/slow disabled: status %d", code)
	}
	var snap obs.ExemplarSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Capacity != 0 || len(snap.Slowest) != 0 {
		t.Fatalf("disabled snapshot = %+v", snap)
	}
}

// TestHealthMetricsAgree is the satellite pin: the latency fields in
// /v1/health and the histograms /metrics exports must be two views of
// the same state — same buckets, same interpolation, exactly equal
// numbers.
func TestHealthMetricsAgree(t *testing.T) {
	srv := New(tinyStore(t, 1), Options{Obs: obs.New()})
	for i := 0; i < 40; i++ {
		get(t, srv, "/v1/asn/64496")
		if i%3 == 0 {
			get(t, srv, "/v1/taxonomy")
		}
		if i%7 == 0 {
			get(t, srv, "/v1/asn/99999999") // 404s count as errors
		}
	}

	code, healthBody := get(t, srv, "/v1/health")
	if code != 200 {
		t.Fatalf("/v1/health: %d", code)
	}
	var health healthResponse
	if err := json.Unmarshal(healthBody, &health); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	samples, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}

	// Only endpoints untouched between the two reads can be compared
	// exactly; /v1/health and /metrics bump themselves.
	for _, label := range []string{"/v1/asn/{n}", "/v1/taxonomy"} {
		ep, ok := health.Endpoints[label]
		if !ok {
			t.Fatalf("health has no endpoint %q", label)
		}
		sel := map[string]string{"endpoint": label}
		if v, _ := samples.Value(MetricRequests, sel); int64(v) != ep.Requests {
			t.Errorf("%s requests: metrics %v, health %d", label, v, ep.Requests)
		}
		if v, _ := samples.Value(MetricErrors, sel); int64(v) != ep.Errors {
			t.Errorf("%s errors: metrics %v, health %d", label, v, ep.Errors)
		}
		if v, _ := samples.Value(MetricLatency+"_sum", sel); int64(v*1e9) != ep.TotalLatencyNs {
			t.Errorf("%s latency sum: metrics %v, health %d", label, int64(v*1e9), ep.TotalLatencyNs)
		}
		for _, q := range []struct {
			q    float64
			want int64
		}{{0.5, ep.LatencyP50Ns}, {0.99, ep.LatencyP99Ns}} {
			got := int64(samples.Quantile(MetricLatency, q.q, sel) * 1e9)
			if got != q.want {
				t.Errorf("%s p%v: metrics-derived %d, health %d", label, q.q*100, got, q.want)
			}
		}
	}
}
