package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"parallellives/internal/obs"
)

// healthLifecycle pulls the lifecycle section out of a /v1/health body.
func healthLifecycle(t *testing.T, h http.Handler) lifecycleJSON {
	t.Helper()
	code, body := get(t, h, "/v1/health")
	if code != http.StatusOK {
		t.Fatalf("/v1/health: status %d", code)
	}
	var resp struct {
		Lifecycle lifecycleJSON `json:"lifecycle"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Lifecycle
}

// TestAdmissionGateSheds saturates a MaxInFlight=2 server with parked
// requests and checks the third is shed with 503 + Retry-After while
// the probe endpoints keep answering — the orchestrator must never
// mistake a busy server for a dead one.
func TestAdmissionGateSheds(t *testing.T) {
	src := newBlockingSource(tinyStore(t, 1))
	srv := New(src, Options{MaxInFlight: 2, Obs: obs.New()})

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := get(t, srv, "/v1/asn/64496")
			codes <- code
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-src.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("parked requests never reached the source")
		}
	}

	req, rec := newRequest(http.MethodGet, "/v1/asn/64500")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Errorf("shed body is not JSON: %q", rec.Body.Bytes())
	}

	// Probes and metrics answer through the saturation.
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz under saturation: status %d, want 200", code)
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz under saturation: status %d, want 200", code)
	}
	if code, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics under saturation: status %d, want 200", code)
	}

	close(src.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("parked request finished with %d, want 200", code)
		}
	}
	lc := healthLifecycle(t, srv)
	if lc.Sheds != 1 {
		t.Errorf("sheds counter = %d, want 1", lc.Sheds)
	}
	if lc.InFlight != 1 { // the /v1/health request itself
		t.Errorf("inFlight = %d, want 1 (the health request)", lc.InFlight)
	}
}

// TestPanicRecovery pins that a handler panic becomes one 500 response
// — the process and every later request stay healthy.
func TestPanicRecovery(t *testing.T) {
	srv := New(panicSource{tinyStore(t, 1)}, Options{Obs: obs.New()})

	code, body := get(t, srv, "/v1/taxonomy")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", code)
	}
	if !strings.Contains(string(body), "internal panic") {
		t.Errorf("panic body %q does not name the panic", body)
	}
	if code, _ := get(t, srv, "/v1/asn/64496"); code != http.StatusOK {
		t.Errorf("request after panic: status %d, want 200", code)
	}
	if lc := healthLifecycle(t, srv); lc.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", lc.Panics)
	}
}

// TestRequestDeadline pins the 504 taxonomy: a lookup outliving
// RequestTimeout is abandoned via context, counted as a timeout, and
// is neutral to the breaker — slow is not broken.
func TestRequestDeadline(t *testing.T) {
	src := &slowSource{Source: tinyStore(t, 1), delay: 5 * time.Second}
	srv := New(src, Options{RequestTimeout: 30 * time.Millisecond, Obs: obs.New()})

	start := time.Now()
	code, _ := get(t, srv, "/v1/asn/64496")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow lookup: status %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline response took %v, want prompt abandonment", elapsed)
	}
	lc := healthLifecycle(t, srv)
	if lc.Timeouts != 1 {
		t.Errorf("timeouts counter = %d, want 1", lc.Timeouts)
	}
	if lc.Breaker == nil || lc.Breaker.State != "closed" || lc.Breaker.ConsecutiveFailures != 0 {
		t.Errorf("breaker after deadline = %+v, want closed with no failures", lc.Breaker)
	}
}

// TestBreakerTransitions drives the breaker state machine with an
// injected clock: threshold failures open it, cooldown admits exactly
// one probe, a failed probe re-opens, a successful probe closes.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute, obs.New().Registry)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker should still be closed", i)
		}
		b.OnFailure()
	}
	if state, consec, trips, _ := b.Snapshot(); state != "closed" || consec != 2 || trips != 0 {
		t.Fatalf("after 2 failures: state=%s consec=%d trips=%d", state, consec, trips)
	}
	b.Allow()
	b.OnFailure() // third consecutive failure: trip
	if state, _, trips, _ := b.Snapshot(); state != "open" || trips != 1 {
		t.Fatalf("after threshold: state=%s trips=%d, want open/1", state, trips)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if _, _, _, shorts := b.Snapshot(); shorts != 1 {
		t.Fatalf("short-circuits = %d, want 1", shorts)
	}

	now = now.Add(61 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if state, _, _, _ := b.Snapshot(); state != "half-open" {
		t.Fatalf("state after cooldown = %s, want half-open", state)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.OnFailure() // probe failed: straight back to open
	if state, _, trips, _ := b.Snapshot(); state != "open" || trips != 2 {
		t.Fatalf("after failed probe: state=%s trips=%d, want open/2", state, trips)
	}

	now = now.Add(61 * time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown refused the probe")
	}
	b.OnNeutral() // cancelled probe: slot released, state unchanged
	if state, _, _, _ := b.Snapshot(); state != "half-open" {
		t.Fatalf("state after neutral probe = %s, want half-open", state)
	}
	if !b.Allow() {
		t.Fatal("neutral outcome did not release the probe slot")
	}
	b.OnSuccess()
	if state, consec, _, _ := b.Snapshot(); state != "closed" || consec != 0 {
		t.Fatalf("after successful probe: state=%s consec=%d, want closed/0", state, consec)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

// TestBreakerHalfOpenSingleProbeConcurrent pins the half-open admission
// contract under contention: when the cooldown elapses with a stampede
// of concurrent requests waiting, exactly one wins the probe slot per
// resolution — everyone else short-circuits. The router's replica
// picker depends on this (an open-breaker replica must cost at most one
// in-flight probe, never a thundering herd against a struggling
// backend).
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	b := newBreaker(1, time.Minute, obs.New().Registry)
	b.now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }

	b.Allow()
	b.OnFailure() // threshold 1: open immediately
	clockMu.Lock()
	now = now.Add(61 * time.Second) // cooldown elapsed; next Allow half-opens
	clockMu.Unlock()

	stampede := func() (admitted int64) {
		var n int64
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Allow() {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return n
	}

	if n := stampede(); n != 1 {
		t.Fatalf("half-open transition admitted %d concurrent probes, want exactly 1", n)
	}
	if state, _, _, _ := b.Snapshot(); state != "half-open" {
		t.Fatalf("state after stampede = %s, want half-open", state)
	}

	// A neutral outcome releases the slot; the next stampede again
	// admits exactly one.
	b.OnNeutral()
	if n := stampede(); n != 1 {
		t.Fatalf("released probe slot admitted %d concurrent probes, want exactly 1", n)
	}

	// The probe succeeds: closed, and the whole stampede flows.
	b.OnSuccess()
	if n := stampede(); n != 32 {
		t.Fatalf("closed breaker admitted %d of 32, want all", n)
	}
	// A failed probe from half-open re-opens: nobody gets through until
	// the next cooldown.
	b.Allow()
	b.OnFailure()
	clockMu.Lock()
	now = now.Add(61 * time.Second)
	clockMu.Unlock()
	b.Allow() // take the probe slot
	b.OnFailure()
	if n := stampede(); n != 0 {
		t.Fatalf("re-opened breaker admitted %d requests before cooldown, want 0", n)
	}
}

// TestBreakerServesShortCircuits is the server-level breaker check:
// consecutive backend failures turn 500s into immediate 503s with
// Retry-After, /readyz goes not-ready, and recovery closes the loop.
func TestBreakerServesShortCircuits(t *testing.T) {
	src := &failingSource{Source: tinyStore(t, 1)}
	src.broken.Store(true)
	srv := New(src, Options{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Obs:              obs.New(),
	})

	for i := 0; i < 3; i++ {
		if code, _ := get(t, srv, fmt.Sprintf("/v1/asn/%d?i=%d", 64496, i)); code != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i, code)
		}
	}
	req, rec := newRequest(http.MethodGet, "/v1/asn/64500")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("short-circuit response missing Retry-After")
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz with open breaker: status %d, want 503", code)
	}
	lc := healthLifecycle(t, srv)
	if lc.Breaker == nil || lc.Breaker.State != "open" || lc.Breaker.Trips != 1 {
		t.Fatalf("breaker health = %+v, want open with 1 trip", lc.Breaker)
	}

	// Heal the backend, wait out the cooldown: the next request is the
	// half-open probe, succeeds, and closes the breaker.
	src.broken.Store(false)
	time.Sleep(70 * time.Millisecond)
	if code, _ := get(t, srv, "/v1/asn/65550"); code != http.StatusOK {
		t.Fatalf("probe after recovery: status %d, want 200", code)
	}
	if lc := healthLifecycle(t, srv); lc.Breaker.State != "closed" {
		t.Errorf("breaker after recovery = %s, want closed", lc.Breaker.State)
	}
	if code, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after recovery: status %d, want 200", code)
	}
}

// TestGracefulShutdown proves the drain contract over a real listener:
// cancelling the run context refuses new connections while an in-flight
// slow request still completes with 200, all inside the drain deadline.
func TestGracefulShutdown(t *testing.T) {
	src := &slowSource{Source: tinyStore(t, 1), delay: 300 * time.Millisecond}
	srv := New(src, Options{Obs: obs.New()})

	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- Run(ctx, ln, srv, HTTPOptions{DrainTimeout: 5 * time.Second}) }()

	type result struct {
		code int
		body []byte
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Get(addr + "/v1/asn/64496")
		if err != nil {
			slow <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body := make([]byte, 0, 512)
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		slow <- result{code: resp.StatusCode, body: body}
	}()

	// Wait until the slow request is parked inside the handler, then
	// pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for healthInflight(t, srv) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownStart := time.Now()
	cancel()

	// New connections are refused once the listener closes.
	refused := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/healthz")
		if err != nil {
			refused = true
			break
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections were still accepted after shutdown began")
	}

	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", r.code)
	}
	if !json.Valid(r.body) {
		t.Errorf("in-flight response body is not valid JSON: %q", r.body)
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return within the drain deadline")
	}
	if elapsed := time.Since(shutdownStart); elapsed > 5*time.Second {
		t.Errorf("drain took %v, past the deadline", elapsed)
	}
}

// healthInflight reads the in-flight gauge without going through the
// HTTP surface (which would itself count as in-flight).
func healthInflight(t *testing.T, s *Server) int64 {
	t.Helper()
	return s.chain.inflight.Load()
}
