package bgpscan

import (
	"net/netip"
	"reflect"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/collector"
	"parallellives/internal/dates"
	"parallellives/internal/worldsim"
)

func day(s string) dates.Day { return dates.MustParse(s) }

func p(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestVisibilityThreshold(t *testing.T) {
	s := NewScanner()
	if err := s.BeginDay(day("2020-01-01")); err != nil {
		t.Fatal(err)
	}
	// AS 100 seen by two peers; AS 200 by one only.
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{174, 100})
	s.Observe(p("10.2.0.0/16"), []asn.ASN{3356, 200})
	if err := s.EndDay(); err != nil {
		t.Fatal(err)
	}
	act := s.Finish()
	if !act.ActiveOn(100, day("2020-01-01")) {
		t.Error("AS100 should be active (2 peers)")
	}
	if act.ActiveOn(200, day("2020-01-01")) {
		t.Error("AS200 should be filtered (1 peer)")
	}
	// Transit peers themselves pass: 3356 appears via itself AND via
	// 174's path? No — each path contributes its first hop as peer.
	if act.ActiveOn(174, day("2020-01-01")) {
		t.Error("AS174 seen by only one peer (itself)")
	}
	if act.Stats.DropLowVis == 0 {
		t.Error("expected low-visibility drops recorded")
	}
}

func TestVisibilityOneAcceptsSinglePeer(t *testing.T) {
	s := NewScannerWithVisibility(1)
	s.BeginDay(day("2020-01-01"))
	s.Observe(p("10.2.0.0/16"), []asn.ASN{3356, 200})
	s.EndDay()
	act := s.Finish()
	if !act.ActiveOn(200, day("2020-01-01")) {
		t.Error("minPeers=1 should accept single-peer ASNs")
	}
}

func TestSanitization(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	s.Observe(p("10.0.0.0/25"), []asn.ASN{1, 2})            // too long v4
	s.Observe(p("10.0.0.0/7"), []asn.ASN{1, 2})             // too short v4
	s.Observe(p("2001:db8::/80"), []asn.ASN{1, 2})          // too long v6
	s.Observe(p("10.0.0.0/24"), []asn.ASN{1, 2, 3, 2, 4})   // loop
	s.Observe(p("10.0.0.0/24"), []asn.ASN{1, 2, 2, 2, 4})   // prepend, OK
	s.Observe(p("2001:db8::/32"), []asn.ASN{9, 2, 2, 2, 4}) // v6 OK
	s.EndDay()
	act := s.Finish()
	if act.Stats.DropPrefixLen != 3 {
		t.Errorf("DropPrefixLen = %d, want 3", act.Stats.DropPrefixLen)
	}
	if act.Stats.DropLoop != 1 {
		t.Errorf("DropLoop = %d, want 1", act.Stats.DropLoop)
	}
	if !act.ActiveOn(4, day("2020-01-01")) {
		t.Error("AS4 visible from peers 1 and 9")
	}
}

func TestActivityRunsAndGaps(t *testing.T) {
	s := NewScanner()
	obsDays := []string{"2020-01-01", "2020-01-02", "2020-01-05"}
	for _, ds := range obsDays {
		s.BeginDay(day(ds))
		s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 100})
		s.Observe(p("10.1.0.0/16"), []asn.ASN{174, 100})
		s.EndDay()
	}
	act := s.Finish()
	runs := act.ASNs[100].Days
	if len(runs) != 2 || runs[0].Days() != 2 || runs[1].Days() != 1 {
		t.Errorf("runs = %v", runs)
	}
}

func TestPrefixCounting(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	// Same prefix from two peers counts once; two prefixes count twice.
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{174, 100})
	s.Observe(p("10.2.0.0/16"), []asn.ASN{174, 100})
	s.EndDay()
	s.BeginDay(day("2020-01-02"))
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{174, 100})
	s.EndDay()
	act := s.Finish()
	a := act.ASNs[100]
	if got := a.PrefixCountOn(day("2020-01-01")); got != 2 {
		t.Errorf("day1 count = %d, want 2", got)
	}
	if got := a.PrefixCountOn(day("2020-01-02")); got != 1 {
		t.Errorf("day2 count = %d, want 1", got)
	}
	if got := a.PrefixCountOn(day("2020-01-03")); got != 0 {
		t.Errorf("day3 count = %d, want 0", got)
	}
}

func TestDayOrderEnforced(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-02"))
	s.EndDay()
	if err := s.BeginDay(day("2020-01-02")); err == nil {
		t.Error("same day twice should fail")
	}
	s2 := NewScanner()
	s2.BeginDay(day("2020-01-02"))
	if err := s2.BeginDay(day("2020-01-03")); err == nil {
		t.Error("BeginDay during open day should fail")
	}
	if err := s2.EndDay(); err != nil {
		t.Error(err)
	}
	if err := s2.EndDay(); err == nil {
		t.Error("double EndDay should fail")
	}
}

// scanWorld runs both the direct and the MRT wire pipelines over the
// same simulated world and returns both activity maps.
func scanWorld(t *testing.T, cfg worldsim.Config) (direct, wire *Activity) {
	t.Helper()
	if testing.Short() {
		t.Skip("two-year wire/direct scan")
	}
	w := worldsim.Generate(cfg)
	inf := collector.New(w)

	ds := NewScanner()
	it := inf.Iter()
	for it.Next() {
		if err := ds.BeginDay(it.Day()); err != nil {
			t.Fatal(err)
		}
		for _, o := range it.Observations() {
			ds.ObserveRoutes(o.Prefixes, o.Path)
		}
		if err := ds.EndDay(); err != nil {
			t.Fatal(err)
		}
	}
	direct = ds.Finish()

	ws := NewScanner()
	it = inf.Iter()
	for it.Next() {
		if err := ws.BeginDay(it.Day()); err != nil {
			t.Fatal(err)
		}
		ribs, upds, err := it.MRT()
		if err != nil {
			t.Fatal(err)
		}
		for _, rib := range ribs {
			if err := ws.ObserveMRT(rib); err != nil {
				t.Fatal(err)
			}
		}
		for _, upd := range upds {
			if err := ws.ObserveMRT(upd); err != nil {
				t.Fatal(err)
			}
		}
		if err := ws.EndDay(); err != nil {
			t.Fatal(err)
		}
	}
	wire = ws.Finish()
	return direct, wire
}

func shortWorldConfig() worldsim.Config {
	cfg := worldsim.DefaultConfig()
	cfg.Scale = 0.01
	cfg.Start = dates.MustParse("2004-01-01")
	cfg.End = dates.MustParse("2005-12-31")
	return cfg
}

func TestWireModeMatchesDirectMode(t *testing.T) {
	direct, wire := scanWorld(t, shortWorldConfig())
	if len(direct.ASNs) == 0 {
		t.Fatal("no activity scanned")
	}
	if len(direct.ASNs) != len(wire.ASNs) {
		t.Fatalf("ASN counts differ: direct=%d wire=%d", len(direct.ASNs), len(wire.ASNs))
	}
	for a, da := range direct.ASNs {
		wa := wire.ASNs[a]
		if wa == nil {
			t.Fatalf("ASN %v missing from wire mode", a)
		}
		if !da.Days.Equal(wa.Days) {
			t.Fatalf("ASN %v days differ:\n direct %v\n wire   %v", a, da.Days, wa.Days)
		}
	}
	if wire.Stats.RIBRecords == 0 || wire.Stats.UpdateMessages == 0 {
		t.Error("wire mode should process RIB records and updates")
	}
	if wire.Stats.DropPrefixLen == 0 || wire.Stats.DropLoop == 0 {
		t.Errorf("wire mode should drop injected noise: %+v", wire.Stats)
	}
}

func TestScanWorldFiltersInvisibleASNs(t *testing.T) {
	cfg := shortWorldConfig()
	w := worldsim.Generate(cfg)
	direct, _ := scanWorld(t, cfg)

	for _, s := range w.Segments {
		switch s.Vis {
		case worldsim.VisNone:
			if a := direct.ASNs[s.ASN]; a != nil {
				// The ASN may have other, visible segments; check only
				// that this invisible span contributed nothing by itself.
				continue
			}
		case worldsim.VisSinglePeer:
			if direct.ActiveOn(s.ASN, s.Span.Start) {
				// Only a failure if no other full-vis segment covers it.
				covered := false
				for _, o := range w.SegmentsOf(s.ASN) {
					if o.Vis == worldsim.VisFull && o.Span.Contains(s.Span.Start) {
						covered = true
					}
				}
				if !covered {
					t.Errorf("single-peer segment of %v leaked into activity", s.ASN)
				}
			}
		}
	}
}

func TestTransitASNsActiveDaily(t *testing.T) {
	cfg := shortWorldConfig()
	w := worldsim.Generate(cfg)
	direct, _ := scanWorld(t, cfg)
	for _, ta := range w.TransitASNs[:4] {
		a := direct.ASNs[ta]
		if a == nil {
			t.Fatalf("transit %v absent", ta)
		}
		cover := a.Days.TotalDays()
		total := cfg.End.Sub(cfg.Start) + 1
		if float64(cover) < 0.95*float64(total) {
			t.Errorf("transit %v active only %d/%d days", ta, cover, total)
		}
	}
}

func TestPeerBitClampBeyond64Peers(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	// 70 distinct peers all sharing paths with AS 100: far beyond the
	// 64-bit mask, the scanner must clamp rather than misbehave.
	for i := 0; i < 70; i++ {
		s.Observe(p("10.1.0.0/16"), []asn.ASN{asn.ASN(1000 + i), 100})
	}
	s.EndDay()
	act := s.Finish()
	if !act.ActiveOn(100, day("2020-01-01")) {
		t.Error("AS100 seen by 70 peers must be active")
	}
}

func TestUpstreamOfSkipsPrepends(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	// Origin 100 prepends itself; the upstream is 174, not 100.
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 174, 100, 100, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{6939, 174, 100, 100, 100})
	s.EndDay()
	act := s.Finish()
	a := act.ASNs[100]
	if a == nil {
		t.Fatal("AS100 missing")
	}
	if len(a.Upstreams) != 1 || a.Upstreams[174] != 2 {
		t.Errorf("upstreams = %v", a.Upstreams)
	}
}

func TestOriginDaysVsTransitDays(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	// AS 50 is transit for origin 100 — it must get activity but no
	// origin days.
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 50, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{6939, 50, 100})
	s.EndDay()
	act := s.Finish()
	if act.ASNs[50] == nil || act.ASNs[100] == nil {
		t.Fatal("activity missing")
	}
	if act.ASNs[50].RoleOn(day("2020-01-01")) != "transit" {
		t.Errorf("AS50 role = %s", act.ASNs[50].RoleOn(day("2020-01-01")))
	}
	if act.ASNs[100].RoleOn(day("2020-01-01")) != "origin" {
		t.Errorf("AS100 role = %s", act.ASNs[100].RoleOn(day("2020-01-01")))
	}
	if act.ASNs[50].RoleOn(day("2020-01-02")) != "absent" {
		t.Error("next day should be absent")
	}
}

func TestPrefixRunSignatureSplitsRuns(t *testing.T) {
	s := NewScanner()
	// Same count, different prefix: the signature must break the run.
	s.BeginDay(day("2020-01-01"))
	s.Observe(p("10.1.0.0/16"), []asn.ASN{3356, 100})
	s.Observe(p("10.1.0.0/16"), []asn.ASN{174, 100})
	s.EndDay()
	s.BeginDay(day("2020-01-02"))
	s.Observe(p("10.2.0.0/16"), []asn.ASN{3356, 100})
	s.Observe(p("10.2.0.0/16"), []asn.ASN{174, 100})
	s.EndDay()
	act := s.Finish()
	runs := act.ASNs[100].PrefixRuns
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Sig == runs[1].Sig {
		t.Error("different prefixes must yield different signatures")
	}
	if runs[0].Count != 1 || runs[1].Count != 1 {
		t.Error("counts wrong")
	}
}

func TestObserveMRTRejectsGarbage(t *testing.T) {
	s := NewScanner()
	s.BeginDay(day("2020-01-01"))
	if err := s.ObserveMRT([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("truncated MRT should error")
	}
	s.EndDay()
	s2 := NewScanner()
	if err := s2.ObserveMRT(nil); err == nil {
		t.Error("ObserveMRT outside a day should error")
	}
}

// TestScannerDayShardIndependence pins the invariant the pipeline's
// day-sharded scan relies on: splitting an observation stream at any day
// boundary across two scanners and merging their partials reproduces the
// single-scanner result exactly — days are self-contained, so no state
// crosses the boundary.
func TestScannerDayShardIndependence(t *testing.T) {
	cfg := shortWorldConfig()
	cfg.End = dates.MustParse("2004-06-30")
	w := worldsim.Generate(cfg)
	inf := collector.New(w)

	var days []dates.Day
	for it := inf.Iter(); it.Next(); {
		days = append(days, it.Day())
	}
	n := len(days)
	if n < 4 {
		t.Fatalf("world too small: %d days", n)
	}

	// scanRange feeds day indices [lo, hi) into a fresh scanner and
	// returns its shard partial.
	scanRange := func(lo, hi int) *Activity {
		s := NewScanner()
		idx := 0
		for it := inf.Iter(); it.Next(); idx++ {
			if idx < lo || idx >= hi {
				continue
			}
			if err := s.BeginDay(it.Day()); err != nil {
				t.Fatal(err)
			}
			for _, o := range it.Observations() {
				s.ObserveRoutes(o.Prefixes, o.Path)
			}
			if err := s.EndDay(); err != nil {
				t.Fatal(err)
			}
		}
		return s.FinishPartial()
	}

	seq := NewScanner()
	for it := inf.Iter(); it.Next(); {
		if err := seq.BeginDay(it.Day()); err != nil {
			t.Fatal(err)
		}
		for _, o := range it.Observations() {
			seq.ObserveRoutes(o.Prefixes, o.Path)
		}
		if err := seq.EndDay(); err != nil {
			t.Fatal(err)
		}
	}
	want := seq.Finish()
	if len(want.ASNs) == 0 {
		t.Fatal("no activity scanned")
	}

	for _, cut := range []int{1, n / 4, n / 2, 3 * n / 4, n - 1} {
		got := MergeActivities(scanRange(0, cut), scanRange(cut, n))
		if got.Start != want.Start || got.End != want.End {
			t.Fatalf("cut %d: window [%v,%v], want [%v,%v]",
				cut, got.Start, got.End, want.Start, want.End)
		}
		if got.Stats != want.Stats {
			t.Fatalf("cut %d: stats %+v, want %+v", cut, got.Stats, want.Stats)
		}
		if !reflect.DeepEqual(got.ASNs, want.ASNs) {
			if len(got.ASNs) != len(want.ASNs) {
				t.Fatalf("cut %d: %d ASNs, want %d", cut, len(got.ASNs), len(want.ASNs))
			}
			for a, wa := range want.ASNs {
				if !reflect.DeepEqual(got.ASNs[a], wa) {
					t.Fatalf("cut %d: ASN %v differs:\n got  %+v\n want %+v",
						cut, a, got.ASNs[a], wa)
				}
			}
			t.Fatalf("cut %d: activities differ", cut)
		}
	}
}
