// Package bgpscan turns raw BGP data into per-ASN daily activity — this
// project's replacement for the CAIDA BGPStream stage of the paper's
// pipeline (§3.2). It consumes either MRT archives (TABLE_DUMP_V2 RIB
// dumps and BGP4MP update dumps) or pre-parsed route observations, and
// applies the paper's sanitization:
//
//   - IPv4 prefixes outside /8../24 and IPv6 prefixes outside /8../64 are
//     discarded (they should not propagate globally);
//   - paths containing loops are discarded (misconfigurations);
//   - an ASN counts as active on a day only when strictly more than one
//     distinct peer AS shares paths containing it that day.
//
// Activity is accumulated as day intervals per ASN, plus the daily count
// of distinct prefixes each ASN originates (the series behind Figure 8).
package bgpscan

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net/netip"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/mrt"
)

// Limits for globally propagated prefixes (§3.2).
const (
	MinV4Bits = 8
	MaxV4Bits = 24
	MinV6Bits = 8
	MaxV6Bits = 64
)

// MinPeerVisibility is the paper's default visibility threshold: strictly
// more than one peer.
const MinPeerVisibility = 2

// Stats counts the scanner's processing and sanitization outcomes.
type Stats struct {
	RIBRecords     int64
	UpdateMessages int64
	Routes         int64 // observations accepted into the day state
	DropPrefixLen  int64
	DropLoop       int64
	DropMalformed  int64
	DropLowVis     int64 // ASN-days rejected by the visibility threshold

	// QuarantinedTruncated counts records (RIB entries / update messages)
	// skipped because their bytes ended early — the cut-transfer damage
	// class, kept separate from generic malformedness so a Health report
	// can reconcile it against known archive dirt.
	QuarantinedTruncated int64
	// QuarantinedTails counts archives abandoned mid-stream on a framing
	// error (an interrupted transfer chopping the final record). The
	// records before the cut are kept; the day survives.
	QuarantinedTails int64
}

// PrefixRun is a run of days over which an origin announced a constant
// set of distinct prefixes: Count prefixes whose order-independent
// signature is Sig. The signature lets analyses distinguish "same number
// of prefixes" from "same prefixes" — the prefix-aware lifetime
// refinement the paper's §8 suggests.
type PrefixRun struct {
	From, To dates.Day
	Count    int
	Sig      uint64
}

// ASNActivity is one ASN's observable footprint.
type ASNActivity struct {
	// Days are the days the ASN passed the visibility threshold.
	Days intervals.Set
	// PrefixRuns compress the daily distinct-prefix origination counts.
	PrefixRuns []PrefixRun
	// Upstreams counts, for each neighbor AS observed immediately before
	// this ASN as an origin, the number of sanitized routes carrying
	// that adjacency. The §6.4 misconfiguration classifier and the
	// §6.1.2 squat analysis both key on these adjacencies.
	Upstreams map[asn.ASN]int64
	// OriginDays are the visible days on which the ASN actually
	// originated prefixes (as opposed to appearing only in transit) —
	// the §9 origination/transit role split.
	OriginDays intervals.Set
}

// RoleOn classifies the ASN's role on day d.
//
//	origin:  originated at least one prefix that day
//	transit: visible on paths but originating nothing
//	absent:  not visible at all
func (a *ASNActivity) RoleOn(d dates.Day) string {
	if a.OriginDays.Contains(d) {
		return "origin"
	}
	if a.Days.Contains(d) {
		return "transit"
	}
	return "absent"
}

// PrefixCountOn returns the number of distinct prefixes the ASN
// originated on day d (0 when inactive).
func (a *ASNActivity) PrefixCountOn(d dates.Day) int {
	i := sort.Search(len(a.PrefixRuns), func(i int) bool { return a.PrefixRuns[i].To >= d })
	if i < len(a.PrefixRuns) && a.PrefixRuns[i].From <= d {
		return a.PrefixRuns[i].Count
	}
	return 0
}

// Activity is the scan result.
type Activity struct {
	Start, End dates.Day
	ASNs       map[asn.ASN]*ASNActivity
	Stats      Stats
}

// ActiveOn reports whether an ASN was active (visible) on day d.
func (a *Activity) ActiveOn(x asn.ASN, d dates.Day) bool {
	aa := a.ASNs[x]
	return aa != nil && aa.Days.Contains(d)
}

// Scanner accumulates daily BGP activity. Use BeginDay / Observe (or
// ObserveMRT) / EndDay for each day in order, then Finish.
type Scanner struct {
	// Quarantine, when set, makes ObserveMRT treat a broken record frame
	// as the end of that archive (counted in Stats.QuarantinedTails)
	// instead of failing the whole day. Per-record decode errors are
	// always skipped and counted, frame errors only under this flag —
	// FailFast pipelines leave it unset and keep the seed behaviour.
	Quarantine bool

	minPeers int
	stats    Stats

	start, end dates.Day
	curDay     dates.Day
	inDay      bool

	// Per-day state: for each ASN on a path, the set of distinct peer
	// ASes that shared it (as a bitmask over registered peers), and for
	// each origin the distinct prefixes announced. Origin sets are pooled
	// (setPool) and reused day after day: BeginDay returns the previous
	// day's sets to the pool, so steady-state days allocate nothing.
	peerIdx   map[asn.ASN]int
	dayPeers  map[asn.ASN]uint64
	dayOrigin map[asn.ASN]*originSet
	setPool   []*originSet

	// Accumulated per-ASN runs.
	building map[asn.ASN]*builder

	// Reusable decode scratch.
	one  [1]netip.Prefix
	keep []netip.Prefix
	upd  bgp.Update
	tbl  mrt.PeerIndexTable
	rib  mrt.RIBRecord
	b4mp mrt.BGP4MPMessage
}

type builder struct {
	days       []intervals.Interval
	originDays []intervals.Interval
	prefixRuns []PrefixRun
	upstreams  map[asn.ASN]int64
}

// originSetSpill is the size at which an origin's per-day prefix set
// migrates from the linear-scanned slice to a map. Almost every origin
// announces far fewer distinct prefixes per day, so the slice path — one
// cache line, no hashing — is the common case.
const originSetSpill = 64

// originSet accumulates the distinct prefixes one origin announced on one
// day, as per-prefix FNV-1a hashes: a small linearly-deduplicated slice,
// spilling to a map above originSetSpill. Distinct-prefix counting and
// the order-independent XOR signature both work on the hashes, so the
// prefixes themselves never need to be retained per day.
type originSet struct {
	hs []uint64
	m  map[uint64]struct{}
}

// add inserts the hash of p if it is not already present.
func (s *originSet) add(p netip.Prefix) {
	h := prefixHash(p)
	if s.m != nil {
		s.m[h] = struct{}{}
		return
	}
	for _, x := range s.hs {
		if x == h {
			return
		}
	}
	if len(s.hs) >= originSetSpill {
		s.m = make(map[uint64]struct{}, 2*originSetSpill)
		for _, x := range s.hs {
			s.m[x] = struct{}{}
		}
		s.m[h] = struct{}{}
		s.hs = s.hs[:0]
		return
	}
	s.hs = append(s.hs, h)
}

// count returns the number of distinct prefixes seen.
func (s *originSet) count() int {
	if s.m != nil {
		return len(s.m)
	}
	return len(s.hs)
}

// sig returns the order-independent XOR signature of the set.
func (s *originSet) sig() uint64 {
	var sig uint64
	if s.m != nil {
		for h := range s.m {
			sig ^= h
		}
		return sig
	}
	for _, h := range s.hs {
		sig ^= h
	}
	return sig
}

// reset readies the set for reuse, keeping the slice capacity and
// dropping any spill map (spilling is rare; holding the buckets for every
// pooled set would pin far more memory than rebuilding the odd map).
func (s *originSet) reset() {
	s.hs = s.hs[:0]
	s.m = nil
}

// NewScanner returns a scanner with the paper's default visibility
// threshold (>1 peer).
func NewScanner() *Scanner { return NewScannerWithVisibility(MinPeerVisibility) }

// NewScannerWithVisibility returns a scanner requiring at least minPeers
// distinct peer ASes per day. minPeers=1 reproduces the naive pipeline
// the paper warns against (the ablation benchmark exercises it).
func NewScannerWithVisibility(minPeers int) *Scanner {
	if minPeers < 1 {
		minPeers = 1
	}
	return &Scanner{
		minPeers:  minPeers,
		peerIdx:   make(map[asn.ASN]int),
		dayPeers:  make(map[asn.ASN]uint64),
		dayOrigin: make(map[asn.ASN]*originSet),
		building:  make(map[asn.ASN]*builder),
		start:     dates.None,
		end:       dates.None,
	}
}

// BeginDay opens a new day; days must be fed in ascending order.
func (s *Scanner) BeginDay(d dates.Day) error {
	if s.inDay {
		return fmt.Errorf("bgpscan: BeginDay(%v) before EndDay", d)
	}
	if s.start != dates.None && d <= s.end {
		return fmt.Errorf("bgpscan: day %v not after %v", d, s.end)
	}
	if s.start == dates.None {
		s.start = d
	}
	s.curDay = d
	s.inDay = true
	clear(s.peerIdx)
	clear(s.dayPeers)
	for _, set := range s.dayOrigin {
		set.reset()
		s.setPool = append(s.setPool, set)
	}
	clear(s.dayOrigin)
	return nil
}

// peerBit registers (or finds) the bitmask bit for a peer AS. Bits are
// assigned per day (peerIdx is cleared in BeginDay), so a day's
// visibility mask depends only on that day's observations — the
// self-containment property that lets a day range be sharded across
// scanners and merged back exactly.
func (s *Scanner) peerBit(peer asn.ASN) uint64 {
	i, ok := s.peerIdx[peer]
	if !ok {
		i = len(s.peerIdx)
		if i >= 64 {
			i = 63 // clamp: more than 64 peers in a day collapse onto one bit
		}
		s.peerIdx[peer] = i
	}
	return 1 << uint(i)
}

// prefixOK applies the propagation-length sanitization.
func prefixOK(p netip.Prefix) bool {
	if p.Addr().Is4() {
		return p.Bits() >= MinV4Bits && p.Bits() <= MaxV4Bits
	}
	return p.Bits() >= MinV6Bits && p.Bits() <= MaxV6Bits
}

// Observe feeds one route observation: a path for a prefix shared by a
// peer AS. The path must start at the peer.
func (s *Scanner) Observe(prefix netip.Prefix, path []asn.ASN) {
	s.ObserveRoutes([]netip.Prefix{prefix}, path)
}

// ObserveRoutes feeds one path carrying several prefixes — the grouped
// form the collectors produce. Prefixes failing the length sanitization
// are dropped individually; the path contributes activity if at least
// one prefix survives.
func (s *Scanner) ObserveRoutes(prefixes []netip.Prefix, path []asn.ASN) {
	if !s.inDay || len(path) == 0 {
		return
	}
	s.keep = s.keep[:0]
	for _, p := range prefixes {
		if prefixOK(p) {
			s.keep = append(s.keep, p)
		} else {
			s.stats.DropPrefixLen++
		}
	}
	kept := s.keep
	if len(kept) == 0 {
		return
	}
	s.upd.Reset()
	s.upd.Path = append(s.upd.Path[:0], bgp.Segment{Type: bgp.SegmentSequence, ASNs: path})
	if s.upd.HasLoop() {
		s.stats.DropLoop++
		return
	}
	s.observePath(kept, &s.upd)
}

// observePath records a sanitized path's ASNs and origin prefixes. The
// prefixes must already have passed the length sanitization.
func (s *Scanner) observePath(prefixes []netip.Prefix, u *bgp.Update) {
	first, ok := u.FirstAS()
	if !ok {
		return
	}
	bit := s.peerBit(first)
	var flat [64]asn.ASN
	for _, a := range u.FlatPath(flat[:0]) {
		s.dayPeers[a] |= bit
	}
	if origin, ok := u.OriginAS(); ok {
		set := s.dayOrigin[origin]
		if set == nil {
			if n := len(s.setPool); n > 0 {
				set = s.setPool[n-1]
				s.setPool = s.setPool[:n-1]
			} else {
				set = &originSet{}
			}
			s.dayOrigin[origin] = set
		}
		for _, p := range prefixes {
			set.add(p)
		}
		if up, ok := s.upstreamOf(u, origin); ok {
			b := s.building[origin]
			if b == nil {
				b = &builder{}
				s.building[origin] = b
			}
			if b.upstreams == nil {
				b.upstreams = make(map[asn.ASN]int64, 2)
			}
			b.upstreams[up]++
		}
	}
	s.stats.Routes++
}

// upstreamOf returns the neighbor AS immediately preceding the origin's
// (possibly prepended) run at the end of the path.
func (s *Scanner) upstreamOf(u *bgp.Update, origin asn.ASN) (asn.ASN, bool) {
	var flat [64]asn.ASN
	path := u.FlatPath(flat[:0])
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] != origin {
			return path[i], true
		}
	}
	return 0, false
}

// ObserveMRT feeds one MRT archive (an io-free byte slice) for the
// current day: TABLE_DUMP_V2 RIB dumps and/or BGP4MP update dumps.
func (s *Scanner) ObserveMRT(data []byte) error {
	if !s.inDay {
		return fmt.Errorf("bgpscan: ObserveMRT outside a day")
	}
	r := mrt.NewReader(bytes.NewReader(data))
	havePeers := false
	for {
		h, body, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if s.Quarantine {
				// Broken framing: an interrupted transfer cut the archive
				// mid-record. Everything before the cut has already been
				// consumed; keep it and abandon the rest of this archive.
				s.stats.QuarantinedTails++
				break
			}
			return err
		}
		switch h.Type {
		case mrt.TypeTableDumpV2:
			switch h.Subtype {
			case mrt.SubtypePeerIndexTable:
				if err := mrt.DecodePeerIndexTable(&s.tbl, body); err != nil {
					s.stats.DropMalformed++
					continue
				}
				havePeers = true
			case mrt.SubtypeRIBIPv4Unicast, mrt.SubtypeRIBIPv6Unicast:
				if !havePeers {
					s.stats.DropMalformed++
					continue
				}
				v6 := h.Subtype == mrt.SubtypeRIBIPv6Unicast
				if err := mrt.DecodeRIBRecord(&s.rib, body, v6); err != nil {
					s.quarantineDecode(err)
					continue
				}
				s.stats.RIBRecords++
				s.scanRIBRecord()
			}
		case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
			if h.Subtype != mrt.SubtypeBGP4MPMessage && h.Subtype != mrt.SubtypeBGP4MPMessageAS4 {
				continue
			}
			if err := mrt.DecodeBGP4MPMessage(&s.b4mp, body, h.Subtype); err != nil {
				s.quarantineDecode(err)
				continue
			}
			s.stats.UpdateMessages++
			s.scanBGP4MP()
		}
	}
	return nil
}

// quarantineDecode classifies one skipped record's decode error:
// bytes-ran-out damage counts as truncation, anything else as generic
// malformedness. Skipping (rather than failing the day) matches the seed
// behaviour; only the classification is new.
func (s *Scanner) quarantineDecode(err error) {
	if errors.Is(err, mrt.ErrTruncated) || errors.Is(err, bgp.ErrTruncated) {
		s.stats.QuarantinedTruncated++
	} else {
		s.stats.DropMalformed++
	}
}

func (s *Scanner) scanRIBRecord() {
	if !prefixOK(s.rib.Prefix) {
		s.stats.DropPrefixLen++
		return
	}
	for _, e := range s.rib.Entries {
		s.upd.Reset()
		if err := bgp.DecodeAttrs(&s.upd, e.Attrs, true); err != nil {
			s.quarantineDecode(err)
			continue
		}
		if s.upd.HasLoop() {
			s.stats.DropLoop++
			continue
		}
		s.observePath(s.onePrefix(s.rib.Prefix), &s.upd)
	}
}

func (s *Scanner) scanBGP4MP() {
	if err := bgp.DecodeUpdate(&s.upd, s.b4mp.Data, s.b4mp.FourByte); err != nil {
		s.quarantineDecode(err)
		return
	}
	if s.upd.HasLoop() {
		s.stats.DropLoop++
		return
	}
	for _, p := range s.upd.Announced {
		if !prefixOK(p) {
			s.stats.DropPrefixLen++
			continue
		}
		// Single-prefix view so origin counting sees each prefix once.
		s.observePath(s.onePrefix(p), &s.upd)
	}
}

// Stats returns the counters accumulated so far. It is valid mid-scan —
// the observability hook the pipeline uses to publish per-day deltas
// (and progress reporters use to compute records/s) without waiting for
// Finish. The scanner is single-goroutine, so callers sampling from
// another goroutine must read through the pipeline's metrics registry,
// not this method.
func (s *Scanner) Stats() Stats { return s.stats }

// EndDay commits the day's visibility decisions into the per-ASN runs.
func (s *Scanner) EndDay() error {
	if !s.inDay {
		return fmt.Errorf("bgpscan: EndDay without BeginDay")
	}
	s.inDay = false
	s.end = s.curDay
	d := s.curDay
	for a, mask := range s.dayPeers {
		if popcount(mask) < s.minPeers {
			s.stats.DropLowVis++
			continue
		}
		b := s.building[a]
		if b == nil {
			b = &builder{}
			s.building[a] = b
		}
		if n := len(b.days); n > 0 && b.days[n-1].End+1 == d {
			b.days[n-1].End = d
		} else {
			b.days = append(b.days, intervals.Interval{Start: d, End: d})
		}
		if set := s.dayOrigin[a]; set != nil && set.count() > 0 {
			count := set.count()
			sig := set.sig()
			if n := len(b.originDays); n > 0 && b.originDays[n-1].End+1 == d {
				b.originDays[n-1].End = d
			} else {
				b.originDays = append(b.originDays, intervals.Interval{Start: d, End: d})
			}
			if n := len(b.prefixRuns); n > 0 && b.prefixRuns[n-1].To+1 == d &&
				b.prefixRuns[n-1].Count == count && b.prefixRuns[n-1].Sig == sig {
				b.prefixRuns[n-1].To = d
			} else {
				b.prefixRuns = append(b.prefixRuns, PrefixRun{From: d, To: d, Count: count, Sig: sig})
			}
		}
	}
	return nil
}

// Finish returns the accumulated activity. The scanner must not be used
// afterwards.
func (s *Scanner) Finish() *Activity { return s.finish(false) }

// FinishPartial returns the activity of one shard of a day-sharded scan.
// Unlike Finish it keeps ASNs that never passed the visibility threshold
// in this shard: their upstream counts may combine with another shard's
// visible days, so the invisible-ASN drop must happen on the union (see
// MergeActivities), not per shard. The scanner must not be used
// afterwards.
func (s *Scanner) FinishPartial() *Activity { return s.finish(true) }

func (s *Scanner) finish(keepInvisible bool) *Activity {
	act := &Activity{
		Start: s.start,
		End:   s.end,
		ASNs:  make(map[asn.ASN]*ASNActivity, len(s.building)),
		Stats: s.stats,
	}
	for a, b := range s.building {
		if len(b.days) == 0 && !keepInvisible {
			continue // upstream bookkeeping only; never passed visibility
		}
		act.ASNs[a] = &ASNActivity{
			Days:       intervals.Set(b.days),
			OriginDays: intervals.Set(b.originDays),
			PrefixRuns: b.prefixRuns,
			Upstreams:  b.upstreams,
		}
	}
	s.building = nil
	return act
}

// add accumulates another shard's counters — the stats half of the
// MergeActivities reduce.
func (st *Stats) add(o Stats) {
	st.RIBRecords += o.RIBRecords
	st.UpdateMessages += o.UpdateMessages
	st.Routes += o.Routes
	st.DropPrefixLen += o.DropPrefixLen
	st.DropLoop += o.DropLoop
	st.DropMalformed += o.DropMalformed
	st.DropLowVis += o.DropLowVis
	st.QuarantinedTruncated += o.QuarantinedTruncated
	st.QuarantinedTails += o.QuarantinedTails
}

// appendCoalesced appends src's day intervals to dst, merging across the
// shard boundary with exactly EndDay's rule (consecutive days join).
// Within each input the intervals are already maximal, so only boundary
// pairs can actually coalesce.
func appendCoalesced(dst, src intervals.Set) intervals.Set {
	for _, iv := range src {
		if n := len(dst); n > 0 && dst[n-1].End+1 == iv.Start {
			dst[n-1].End = iv.End
		} else {
			dst = append(dst, iv)
		}
	}
	return dst
}

// appendRuns appends src's prefix runs to dst, coalescing across the
// shard boundary under EndDay's rule: consecutive days with identical
// count and signature extend the previous run.
func appendRuns(dst, src []PrefixRun) []PrefixRun {
	for _, r := range src {
		if n := len(dst); n > 0 && dst[n-1].To+1 == r.From &&
			dst[n-1].Count == r.Count && dst[n-1].Sig == r.Sig {
			dst[n-1].To = r.To
		} else {
			dst = append(dst, r)
		}
	}
	return dst
}

// Absorb folds a later partial activity (a FinishPartial result whose
// days all follow the receiver's) into the receiver in place: day and
// origin-day intervals concatenate with boundary coalescing, prefix
// runs coalesce when count and signature match across the boundary, and
// upstream counts and stats sum. Invisible ASNs are kept — Absorb is
// the carry-state append of an incremental (day-at-a-time) scan, where
// an ASN invisible so far may still combine with a later visible day;
// the invisible drop happens once, in Finalize. Absorbing each shard of
// a day-sharded scan in ascending day order and then finalizing is
// exactly MergeActivities.
func (out *Activity) Absorb(p *Activity) {
	if p == nil {
		return
	}
	out.Stats.add(p.Stats)
	if p.Start != dates.None && (out.Start == dates.None || p.Start < out.Start) {
		out.Start = p.Start
	}
	if p.End != dates.None && (out.End == dates.None || p.End > out.End) {
		out.End = p.End
	}
	for a, aa := range p.ASNs {
		m := out.ASNs[a]
		if m == nil {
			m = &ASNActivity{}
			out.ASNs[a] = m
		}
		m.Days = appendCoalesced(m.Days, aa.Days)
		m.OriginDays = appendCoalesced(m.OriginDays, aa.OriginDays)
		m.PrefixRuns = appendRuns(m.PrefixRuns, aa.PrefixRuns)
		if len(aa.Upstreams) > 0 {
			if m.Upstreams == nil {
				m.Upstreams = make(map[asn.ASN]int64, len(aa.Upstreams))
			}
			for up, n := range aa.Upstreams {
				m.Upstreams[up] += n
			}
		}
	}
}

// NewPartial returns an empty activity ready to Absorb partial results —
// the zero carry-state of an incremental scan.
func NewPartial() *Activity {
	return &Activity{
		Start: dates.None,
		End:   dates.None,
		ASNs:  make(map[asn.ASN]*ASNActivity),
	}
}

// Finalize reproduces Finish's invisible-ASN filtering on an absorbed
// union without mutating it: ASNs that never passed the visibility
// threshold on any absorbed day carry upstream bookkeeping only and are
// excluded from the returned view. The result shares ASNActivity values
// with the input, so the carry may keep absorbing later days after a
// finalized view has been taken from it — the property the streaming
// tailer's snapshot-per-day publishing relies on.
func Finalize(a *Activity) *Activity {
	out := &Activity{
		Start: a.Start,
		End:   a.End,
		ASNs:  make(map[asn.ASN]*ASNActivity, len(a.ASNs)),
		Stats: a.Stats,
	}
	for x, m := range a.ASNs {
		if len(m.Days) > 0 {
			out.ASNs[x] = m
		}
	}
	return out
}

// MergeActivities combines the FinishPartial results of consecutive day
// shards — given in ascending day order — into the activity a single
// scanner fed the whole range would have produced. Day and origin-day
// intervals concatenate with boundary coalescing, prefix runs coalesce
// when count and signature match across the boundary, upstream counts
// and stats sum, and ASNs that never passed the visibility threshold in
// any shard are dropped at the end — reproducing Finish's filtering on
// the union. Each day is self-contained (per-day peer bitmaps), so the
// merged result is bit-for-bit the sequential one.
func MergeActivities(parts ...*Activity) *Activity {
	out := NewPartial()
	for _, p := range parts {
		out.Absorb(p)
	}
	for a, m := range out.ASNs {
		if len(m.Days) == 0 {
			delete(out.ASNs, a)
		}
	}
	return out
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// prefixHash is a per-prefix FNV-1a hash.
func prefixHash(p netip.Prefix) uint64 {
	h := uint64(14695981039346656037)
	a := p.Addr().As16()
	for _, b := range a {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(p.Bits())
	h *= 1099511628211
	return h
}

// onePrefix wraps a single prefix in the scanner's reusable buffer.
func (s *Scanner) onePrefix(p netip.Prefix) []netip.Prefix {
	s.one[0] = p
	return s.one[:]
}
