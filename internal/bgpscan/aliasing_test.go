package bgpscan

import (
	"encoding/json"
	"net/netip"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

// TestPooledScratchDoesNotAliasActivity pins the pooling contract: the
// Activity returned by Finish must not share memory with the scanner's
// recycled per-day scratch (the originSet pool, the sanitized-prefix
// buffer, the synthetic update). After Finish we scribble over every
// pooled structure we can reach and assert the serialized Activity is
// byte-identical to the snapshot taken before the scribble.
func TestPooledScratchDoesNotAliasActivity(t *testing.T) {
	s := NewScannerWithVisibility(1)
	day := dates.MustParse("2010-01-01")
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/16"),
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("2001:db8::/32"),
	}
	for d := 0; d < 8; d++ {
		if err := s.BeginDay(day.AddDays(d)); err != nil {
			t.Fatal(err)
		}
		for origin := asn.ASN(100); origin < 140; origin++ {
			// Vary the prefix count per origin and day so several sets
			// are in play and the pool is exercised across days.
			n := 1 + int(origin+asn.ASN(d))%len(prefixes)
			s.ObserveRoutes(prefixes[:n], []asn.ASN{1, 2, origin})
			s.Observe(prefixes[d%len(prefixes)], []asn.ASN{3, 4, origin})
		}
		if err := s.EndDay(); err != nil {
			t.Fatal(err)
		}
	}

	act := s.Finish()
	before, err := json.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}

	// Scribble every pooled originSet — both the free list and any sets
	// still parked in dayOrigin from the final day.
	scribbleSet := func(set *originSet) {
		for i := range set.hs {
			set.hs[i] = 0xdeadbeefdeadbeef
		}
		set.hs = append(set.hs, 1, 2, 3)
		if set.m != nil {
			for k := range set.m {
				delete(set.m, k)
			}
			set.m[42] = struct{}{}
		}
	}
	if len(s.setPool) == 0 && len(s.dayOrigin) == 0 {
		t.Fatal("no pooled origin sets to scribble — pooling gone?")
	}
	for _, set := range s.setPool {
		scribbleSet(set)
	}
	for _, set := range s.dayOrigin {
		scribbleSet(set)
	}
	// Scribble the reusable sanitized-prefix buffer and synthetic update.
	for i := range s.keep {
		s.keep[i] = netip.MustParsePrefix("192.0.2.0/24")
	}
	for i := range s.upd.Path {
		for j := range s.upd.Path[i].ASNs {
			s.upd.Path[i].ASNs[j] = 65000
		}
	}

	after, err := json.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("Activity changed after scribbling pooled scanner scratch")
	}
}

// TestPooledScratchDoesNotAliasPartial is the FinishPartial variant:
// shard outputs feed MergeActivities later, so they too must be
// independent of the recycled scratch.
func TestPooledScratchDoesNotAliasPartial(t *testing.T) {
	s := NewScanner() // paper default visibility: some ASNs stay invisible
	day := dates.MustParse("2011-06-01")
	p := netip.MustParsePrefix("10.2.0.0/16")
	for d := 0; d < 4; d++ {
		if err := s.BeginDay(day.AddDays(d)); err != nil {
			t.Fatal(err)
		}
		// Origin 200 is seen by two peers (visible); 201 by one (invisible,
		// but kept by FinishPartial).
		s.Observe(p, []asn.ASN{1, 5, 200})
		s.Observe(p, []asn.ASN{2, 5, 200})
		s.Observe(p, []asn.ASN{1, 6, 201})
		if err := s.EndDay(); err != nil {
			t.Fatal(err)
		}
	}
	act := s.FinishPartial()
	before, err := json.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range s.setPool {
		set.hs = set.hs[:cap(set.hs)]
		for i := range set.hs {
			set.hs[i] = ^uint64(0)
		}
	}
	for _, set := range s.dayOrigin {
		set.hs = set.hs[:cap(set.hs)]
		for i := range set.hs {
			set.hs[i] = ^uint64(0)
		}
	}
	after, err := json.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("partial Activity changed after scribbling pooled scratch")
	}
}
