package core

import (
	"sort"
	"strconv"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// OutsideKind classifies an operational life with no overlapping
// administrative life (§6.4).
type OutsideKind uint8

// Outside-delegation classifications.
const (
	// OutPostDealloc: the ASN was allocated at another time; this life
	// falls entirely outside — the post-deallocation abuse pattern.
	OutPostDealloc OutsideKind = iota
	// OutFatFingerPrepend: never-allocated origin whose decimal form is
	// a first-hop ASN written twice (failed prepend).
	OutFatFingerPrepend
	// OutFatFingerMOAS: never-allocated origin one digit away from an
	// allocated ASN sharing an upstream (mistyped origin causing MOAS).
	OutFatFingerMOAS
	// OutLargeLeak: never-allocated origin with more digits than any
	// allocated ASN (internal numbering leaking out).
	OutLargeLeak
	// OutUnexplained: never-allocated with no matching signature.
	OutUnexplained
)

var outsideNames = [...]string{
	"post-deallocation", "fat-finger prepend", "fat-finger MOAS",
	"large internal leak", "unexplained",
}

func (k OutsideKind) String() string {
	if int(k) < len(outsideNames) {
		return outsideNames[k]
	}
	return "unknown"
}

// OutsideFinding is one classified outside-delegation operational life.
type OutsideFinding struct {
	ASN    asn.ASN
	OpIdx  int
	Span   intervals.Interval
	Kind   OutsideKind
	Bogon  bool // reserved/special-purpose ASN (excluded from counts)
	Victim asn.ASN
	// DaysSinceDealloc, for OutPostDealloc, is the gap from the nearest
	// earlier administrative life end (−1 when none precedes).
	DaysSinceDealloc int
	// DaysSincePrevOp, for OutPostDealloc, is the gap from the previous
	// operational life (−1 when none).
	DaysSincePrevOp int
	// Hijack marks post-deallocation lives matching the abuse signature:
	// soon after deallocation but long after (or without) any previous
	// operational life.
	Hijack bool
}

// OutsideProfile summarizes §6.4.
type OutsideProfile struct {
	Findings []OutsideFinding
	// ASNsPostDealloc and ASNsNeverAllocated count distinct ASNs in the
	// two sub-categories (the paper's 799 and 868).
	ASNsPostDealloc     int
	ASNsNeverAllocated  int
	BogonASNsExcluded   int
	HijackEvents        int
	PrependCases        int
	MOASCases           int
	LargeLeaks          int
	Unexplained         int
	NeverAllocOver1Day  int
	NeverAllocOver1Mon  int
	NeverAllocOver1Year int
}

// hijackRecentDeallocDays and hijackQuietDays encode the §6.4
// observation: abused ASNs are used soon after deallocation but long
// after their last legitimate activity.
const (
	hijackRecentDeallocDays = 120
	hijackQuietDays         = 3000
)

// Outside classifies every outside-delegation operational life (§6.4).
func (j *Joint) Outside() OutsideProfile {
	var p OutsideProfile

	// The largest allocated digit length bounds plausibility.
	maxDigits := 0
	allocated := make(map[asn.ASN]bool, len(j.Admin.Lifetimes))
	for _, al := range j.Admin.Lifetimes {
		allocated[al.ASN] = true
		if d := al.ASN.DigitLen(); d > maxDigits {
			maxDigits = d
		}
	}

	postASN := make(map[asn.ASN]bool)
	neverASN := make(map[asn.ASN]bool)
	durByASN := make(map[asn.ASN]int)

	for oi, cat := range j.OpCat {
		if cat != CatOutside {
			continue
		}
		ol := &j.Ops.Lifetimes[oi]
		f := OutsideFinding{ASN: ol.ASN, OpIdx: oi, Span: ol.Span,
			DaysSinceDealloc: -1, DaysSincePrevOp: -1}
		if ol.ASN.Reserved() {
			f.Bogon = true
			p.Findings = append(p.Findings, f)
			continue
		}
		if len(j.Admin.Of(ol.ASN)) > 0 {
			f.Kind = OutPostDealloc
			j.classifyPostDealloc(&f)
			postASN[ol.ASN] = true
			if f.Hijack {
				p.HijackEvents++
			}
		} else {
			neverASN[ol.ASN] = true
			durByASN[ol.ASN] += ol.Span.Days()
			f.Kind, f.Victim = j.classifyNeverAllocated(ol.ASN, allocated, maxDigits)
			switch f.Kind {
			case OutFatFingerPrepend:
				p.PrependCases++
			case OutFatFingerMOAS:
				p.MOASCases++
			case OutLargeLeak:
				p.LargeLeaks++
			default:
				p.Unexplained++
			}
		}
		p.Findings = append(p.Findings, f)
	}

	for _, f := range p.Findings {
		if f.Bogon {
			p.BogonASNsExcluded++
		}
	}
	p.ASNsPostDealloc = len(postASN)
	p.ASNsNeverAllocated = len(neverASN)
	for _, d := range durByASN {
		if d > 1 {
			p.NeverAllocOver1Day++
		}
		if d > 31 {
			p.NeverAllocOver1Mon++
		}
		if d > 365 {
			p.NeverAllocOver1Year++
		}
	}
	return p
}

// classifyPostDealloc fills the timing fields and the hijack flag of a
// post-deallocation finding.
func (j *Joint) classifyPostDealloc(f *OutsideFinding) {
	var prevAdminEnd dates.Day = dates.None
	for _, ai := range j.Admin.Of(f.ASN) {
		al := &j.Admin.Lifetimes[ai]
		if al.Span.End < f.Span.Start && (prevAdminEnd == dates.None || al.Span.End > prevAdminEnd) {
			prevAdminEnd = al.Span.End
		}
	}
	if prevAdminEnd != dates.None {
		f.DaysSinceDealloc = f.Span.Start.Sub(prevAdminEnd)
	}
	var prevOpEnd dates.Day = dates.None
	for _, oi := range j.Ops.Of(f.ASN) {
		ol := &j.Ops.Lifetimes[oi]
		if ol.Span.End < f.Span.Start && (prevOpEnd == dates.None || ol.Span.End > prevOpEnd) {
			prevOpEnd = ol.Span.End
		}
	}
	if prevOpEnd != dates.None {
		f.DaysSincePrevOp = f.Span.Start.Sub(prevOpEnd)
	}
	recent := f.DaysSinceDealloc >= 0 && f.DaysSinceDealloc <= hijackRecentDeallocDays
	quiet := f.DaysSincePrevOp < 0 || f.DaysSincePrevOp >= hijackQuietDays
	f.Hijack = recent && quiet
}

// classifyNeverAllocated applies the §6.4 digit-pattern signatures.
func (j *Joint) classifyNeverAllocated(a asn.ASN, allocated map[asn.ASN]bool, maxDigits int) (OutsideKind, asn.ASN) {
	act := j.Ops.Activity.ASNs[a]
	// Failed prepend: the origin equals a first-hop neighbor doubled.
	if act != nil {
		for up := range act.Upstreams {
			if asn.ExactRepetition(a, up) {
				return OutFatFingerPrepend, up
			}
		}
	}
	// Mistyped origin: one digit (substituted or inserted) away from an
	// allocated ASN that shares an upstream.
	if victim, ok := j.digitNeighbor(a, allocated, act); ok {
		return OutFatFingerMOAS, victim
	}
	if a.DigitLen() > maxDigits {
		return OutLargeLeak, 0
	}
	return OutUnexplained, 0
}

// digitNeighbor searches allocated ASNs one edit away from a, preferring
// those sharing an observed upstream.
func (j *Joint) digitNeighbor(a asn.ASN, allocated map[asn.ASN]bool, act *bgpscan.ASNActivity) (asn.ASN, bool) {
	var candidates []asn.ASN
	s := a.String()
	// Substitutions.
	for i := 0; i < len(s); i++ {
		for c := byte('0'); c <= '9'; c++ {
			if c == s[i] || (i == 0 && c == '0') {
				continue
			}
			mut := s[:i] + string(c) + s[i+1:]
			if v, err := strconv.ParseUint(mut, 10, 32); err == nil && allocated[asn.ASN(v)] {
				candidates = append(candidates, asn.ASN(v))
			}
		}
	}
	// Deletions (the bogus origin has one digit more than the victim).
	if len(s) > 1 {
		for i := 0; i < len(s); i++ {
			mut := s[:i] + s[i+1:]
			if mut[0] == '0' {
				continue
			}
			if v, err := strconv.ParseUint(mut, 10, 32); err == nil && allocated[asn.ASN(v)] {
				candidates = append(candidates, asn.ASN(v))
			}
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	sort.Slice(candidates, func(i, k int) bool { return candidates[i] < candidates[k] })
	// Prefer a candidate that shares an upstream with the bogus origin —
	// the paper's corroboration that the announcement imitates the
	// victim's routing.
	if act != nil {
		for _, v := range candidates {
			vact := j.Ops.Activity.ASNs[v]
			if vact == nil {
				continue
			}
			for up := range act.Upstreams {
				if _, shared := vact.Upstreams[up]; shared {
					return v, true
				}
			}
		}
	}
	return candidates[0], true
}
