package core

import "fmt"

// The taxonomy's wire identity. Snapshots, JSON responses and any future
// storage format identify a Category by these values, which are frozen:
// the iota order of the Category constants is an in-memory detail, while
// Code/Token pairs below are a compatibility contract (checked by tests).
var categoryTokens = [...]string{
	CatComplete: "complete",
	CatPartial:  "partial",
	CatUnused:   "unused",
	CatOutside:  "outside",
}

// Code returns the stable one-byte wire code of the category, suitable
// for binary snapshot encodings.
func (c Category) Code() uint8 { return uint8(c) }

// CategoryFromCode maps a wire code back to a Category.
func CategoryFromCode(code uint8) (Category, error) {
	if int(code) >= len(categoryTokens) {
		return 0, fmt.Errorf("core: unknown category code %d", code)
	}
	return Category(code), nil
}

// Token returns the stable short identifier ("complete", "partial",
// "unused", "outside") used in JSON APIs; String keeps the paper's long
// display names.
func (c Category) Token() string {
	if int(c) < len(categoryTokens) {
		return categoryTokens[c]
	}
	return "unknown"
}

// ParseCategory maps a token back to a Category.
func ParseCategory(token string) (Category, error) {
	for i, t := range categoryTokens {
		if t == token {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown category token %q", token)
}

// MarshalText encodes the category as its stable token, so JSON bodies
// carry "complete" rather than a bare integer.
func (c Category) MarshalText() ([]byte, error) {
	if int(c) >= len(categoryTokens) {
		return nil, fmt.Errorf("core: cannot marshal unknown category %d", uint8(c))
	}
	return []byte(categoryTokens[c]), nil
}

// UnmarshalText decodes a stable token.
func (c *Category) UnmarshalText(text []byte) error {
	v, err := ParseCategory(string(text))
	if err != nil {
		return err
	}
	*c = v
	return nil
}
