package core

import (
	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// Category is the paper's four-way taxonomy of admin/op alignment (§6,
// Figure 6).
type Category uint8

// Taxonomy categories.
const (
	// CatComplete: every overlapping operational life fits entirely
	// inside the administrative life (§6.1).
	CatComplete Category = iota
	// CatPartial: at least one operational life sticks out of the
	// administrative life it overlaps (§6.2).
	CatPartial
	// CatUnused: an administrative life with no overlapping operational
	// life at all (§6.3).
	CatUnused
	// CatOutside: an operational life with no overlapping administrative
	// life (§6.4). Only operational lives carry this category.
	CatOutside
)

var categoryNames = [...]string{"complete overlap", "partial overlap", "unused", "outside delegation"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Joint is the aligned view of both lifetime dimensions.
type Joint struct {
	Admin *AdminIndex
	Ops   *OpIndex

	// AdminCat[i] classifies Admin.Lifetimes[i] into CatComplete,
	// CatPartial or CatUnused.
	AdminCat []Category
	// OpCat[i] classifies Ops.Lifetimes[i] into CatComplete, CatPartial
	// or CatOutside.
	OpCat []Category

	// ContainedOps[i] lists, for admin lifetime i, the indices of the
	// operational lifetimes fully inside it.
	ContainedOps [][]int
	// OverlapOps[i] lists all operational lifetimes overlapping admin
	// lifetime i (contained ones included).
	OverlapOps [][]int
}

// Analyze aligns the two dimensions and classifies every lifetime.
func Analyze(admin *AdminIndex, ops *OpIndex) *Joint {
	return AnalyzeParallel(admin, ops, 1)
}

// TaxonomyCounts is the Table 3 summary.
type TaxonomyCounts struct {
	AdminComplete, AdminPartial, AdminUnused int
	OpComplete, OpPartial, OpOutside         int
}

// Taxonomy tallies the classification (Table 3).
func (j *Joint) Taxonomy() TaxonomyCounts {
	var t TaxonomyCounts
	for _, c := range j.AdminCat {
		switch c {
		case CatComplete:
			t.AdminComplete++
		case CatPartial:
			t.AdminPartial++
		case CatUnused:
			t.AdminUnused++
		}
	}
	for _, c := range j.OpCat {
		switch c {
		case CatComplete:
			t.OpComplete++
		case CatPartial:
			t.OpPartial++
		case CatOutside:
			t.OpOutside++
		}
	}
	return t
}

// Utilization returns, for every admin lifetime whose overlapping op
// lives are all contained (the §6.1 complete-overlap class) and
// non-empty, the fraction of the administrative days covered by
// operational activity — the Figure 7 CDF.
func (j *Joint) Utilization() []float64 {
	var out []float64
	for ai, cat := range j.AdminCat {
		if cat != CatComplete {
			continue
		}
		al := &j.Admin.Lifetimes[ai]
		covered := 0
		for _, oi := range j.ContainedOps[ai] {
			covered += j.Ops.Lifetimes[oi].Span.Days()
		}
		out = append(out, float64(covered)/float64(al.Span.Days()))
	}
	return out
}

// OverlapProfile summarizes the §6.1 under-utilization causes.
type OverlapProfile struct {
	// DeallocLagDays collects, per RIR, the delays between the last
	// contained operational day and the deallocation, for closed admin
	// lives ("late deallocations").
	DeallocLagDays [asn.NumRIRs][]int
	// StartDelayDays collects, per RIR, the delays between allocation
	// and the first contained operational day.
	StartDelayDays [asn.NumRIRs][]int
	// OpLivesPerAdmin histograms the number of contained op lives for
	// complete-overlap admin lives with at least one: index 0 holds the
	// count of lives with exactly 1, index 1 exactly 2, index 2 three or
	// more, index 3 more than ten.
	OneLife, TwoLives, MoreLives, TenPlus int
	// TenPlusWithSiblings counts ten-plus ASNs whose organization holds
	// sibling ASNs.
	TenPlusWithSiblings int
	// LargelySpaced counts multi-life admin lives whose contained op
	// lives are separated by more than a year.
	LargelySpaced int
	MultiLife     int
}

// Overlap profiles the complete-overlap category (§6.1). windowEnd
// excludes still-open lifetimes from the deallocation-lag statistics,
// as the paper does.
func (j *Joint) Overlap(windowEnd dates.Day) OverlapProfile {
	var p OverlapProfile
	siblings := j.Admin.SiblingCounts()
	for ai, cat := range j.AdminCat {
		if cat != CatComplete {
			continue
		}
		al := &j.Admin.Lifetimes[ai]
		contained := j.ContainedOps[ai]
		if len(contained) == 0 {
			continue
		}
		first := j.Ops.Lifetimes[contained[0]].Span
		last := j.Ops.Lifetimes[contained[len(contained)-1]].Span
		p.StartDelayDays[al.RIR] = append(p.StartDelayDays[al.RIR], first.Start.Sub(al.Span.Start))
		if !al.Open && al.Span.End < windowEnd {
			p.DeallocLagDays[al.RIR] = append(p.DeallocLagDays[al.RIR], al.Span.End.Sub(last.End))
		}
		switch n := len(contained); {
		case n == 1:
			p.OneLife++
		case n == 2:
			p.TwoLives++
		default:
			p.MoreLives++
		}
		if len(contained) > 10 {
			p.TenPlus++
			if len(siblings[al.OpaqueID]) > 1 {
				p.TenPlusWithSiblings++
			}
		}
		if len(contained) > 1 {
			p.MultiLife++
			for k := 1; k < len(contained); k++ {
				gap := j.Ops.Lifetimes[contained[k]].Span.Start.Sub(j.Ops.Lifetimes[contained[k-1]].Span.End) - 1
				if gap > 365 {
					p.LargelySpaced++
					break
				}
			}
		}
	}
	return p
}

// AliveSeries computes the Figure 4 daily series: per-RIR and overall
// counts of administratively and operationally alive ASNs.
type AliveSeries struct {
	Start, End   dates.Day
	AdminPerRIR  [asn.NumRIRs][]int
	AdminOverall []int
	OpPerRIR     [asn.NumRIRs][]int
	OpOverall    []int
}

// Alive builds the Figure 4 series over [start, end]. Operational counts
// attribute an ASN to the registry of the administrative lifetime
// covering (or nearest to) the day; ASNs with no administrative life
// count only in the overall line.
func (j *Joint) Alive(start, end dates.Day) *AliveSeries {
	n := end.Sub(start) + 1
	s := &AliveSeries{Start: start, End: end}
	s.AdminOverall = make([]int, n)
	s.OpOverall = make([]int, n)
	for r := range s.AdminPerRIR {
		s.AdminPerRIR[r] = make([]int, n)
		s.OpPerRIR[r] = make([]int, n)
	}
	bump := func(series []int, iv intervals.Interval) {
		lo := dates.Max(iv.Start, start)
		hi := dates.Min(iv.End, end)
		for d := lo; d <= hi; d++ {
			series[d.Sub(start)]++
		}
	}
	for _, al := range j.Admin.Lifetimes {
		bump(s.AdminOverall, al.Span)
		bump(s.AdminPerRIR[al.RIR], al.Span)
	}
	for _, ol := range j.Ops.Lifetimes {
		// Count actual activity days, not the bridged lifetime, so the
		// series reflects observed presence.
		act := j.Ops.Activity.ASNs[ol.ASN]
		if act == nil {
			continue
		}
		rirOf := func(d dates.Day) (asn.RIR, bool) {
			for _, ai := range j.Admin.Of(ol.ASN) {
				if j.Admin.Lifetimes[ai].Span.Contains(d) {
					return j.Admin.Lifetimes[ai].RIR, true
				}
			}
			return 0, false
		}
		for _, iv := range act.Days {
			sub, ok := iv.Intersect(ol.Span)
			if !ok {
				continue
			}
			lo := dates.Max(sub.Start, start)
			hi := dates.Min(sub.End, end)
			for d := lo; d <= hi; d++ {
				s.OpOverall[d.Sub(start)]++
				if r, ok := rirOf(d); ok {
					s.OpPerRIR[r][d.Sub(start)]++
				}
			}
		}
	}
	return s
}
