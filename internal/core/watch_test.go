package core

import (
	"strings"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/intervals"
)

func TestValidator(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2010-01-01", "2012-01-01")},
		{ASN: 1, Span: iv("2014-01-01", "2016-01-01")},
	}
	v := NewValidator(NewAdminIndex(admin))
	if !v.DelegatedOn(1, d("2011-06-01")) || !v.DelegatedOn(1, d("2015-01-01")) {
		t.Error("delegated days rejected")
	}
	if v.DelegatedOn(1, d("2013-01-01")) {
		t.Error("gap day accepted")
	}
	if v.DelegatedOn(2, d("2011-01-01")) || v.EverDelegated(2) {
		t.Error("unknown ASN accepted")
	}
	if !v.EverDelegated(1) {
		t.Error("EverDelegated wrong")
	}
}

func TestWatchEventsFeed(t *testing.T) {
	admin := []AdminLifetime{
		// Dormant squat host.
		{ASN: 1, Span: iv("2005-01-01", "2016-01-01")},
		// Deallocated 2010; used right after.
		{ASN: 500, Span: iv("2005-01-01", "2010-01-01")},
		// The fat-finger victim.
		{ASN: 32026, Span: iv("2005-01-01", "2020-01-01")},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1:          {iv("2012-01-01", "2012-01-15")},
		500:        {iv("2010-01-20", "2010-02-05")},
		32026:      {iv("2005-02-01", "2019-01-01")},
		3202632026: {iv("2015-01-01", "2015-01-10")},
		290012147:  {iv("2015-01-01", "2017-01-01")},
		77700:      {iv("2016-01-01", "2016-01-02")},
	})
	act.ASNs[3202632026].Upstreams = map[asn.ASN]int64{32026: 10}
	j := joint(admin, act, 30)

	events := j.WatchEvents(DefaultSquatParams())
	byKind := map[EventKind]int{}
	for i := 1; i < len(events); i++ {
		if events[i].Day < events[i-1].Day {
			t.Fatal("events not chronological")
		}
	}
	for _, e := range events {
		byKind[e.Kind]++
		switch e.Kind {
		case EventDormantAwakening:
			if e.ASN != 1 || !strings.Contains(e.Detail, "dormant") {
				t.Errorf("awakening event = %+v", e)
			}
		case EventPostDeallocUse:
			if e.ASN != 500 || !strings.Contains(e.Detail, "hijack pattern") {
				t.Errorf("post-dealloc event = %+v", e)
			}
		case EventLookalikeOrigin:
			if e.ASN != 3202632026 || e.Victim != 32026 {
				t.Errorf("lookalike event = %+v", e)
			}
		case EventLargeASNLeak:
			if e.ASN != 290012147 {
				t.Errorf("leak event = %+v", e)
			}
		case EventUndelegatedOrigin:
			if e.ASN != 77700 {
				t.Errorf("undelegated event = %+v", e)
			}
		}
	}
	for _, k := range []EventKind{EventDormantAwakening, EventPostDeallocUse,
		EventLookalikeOrigin, EventLargeASNLeak, EventUndelegatedOrigin} {
		if byKind[k] == 0 {
			t.Errorf("no %s events in feed", k)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	if EventDormantAwakening.String() != "dormant-awakening" ||
		EventLargeASNLeak.String() != "large-asn-leak" ||
		EventKind(99).String() != "unknown" {
		t.Error("event kind strings wrong")
	}
}
