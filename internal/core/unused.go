package core

import (
	"sort"

	"parallellives/internal/asn"
)

// UnusedProfile summarizes the §6.3 allocated-but-unused category.
type UnusedProfile struct {
	// Lives is the number of unused administrative lives; ASNs the
	// number of distinct ASNs with at least one; NeverUsedASNs the ASNs
	// none of whose lives overlap any operational activity.
	Lives         int
	ASNs          int
	NeverUsedASNs int

	// DurationsByRIR collects unused-life durations per registry (the
	// Figure 9 CDFs).
	DurationsByRIR [asn.NumRIRs][]int

	// CountryShare maps country code to {unused lives, total lives} so
	// reports can compute the §6.3 disproportion table.
	CountryUnused map[string]int
	CountryTotal  map[string]int

	// SiblingUnused counts unused lives whose organization (opaque id)
	// also holds other ASNs; SiblingOrgs the organizations involved.
	SiblingUnused int

	// ShortUnused32 and ShortUnusedTotal count unused lives shorter than
	// 31 days per RIR and how many of them are 32-bit ASNs.
	ShortUnusedTotal [asn.NumRIRs]int
	ShortUnused32    [asn.NumRIRs]int

	// Replaced16 counts short-lived unused 32-bit allocations whose
	// organization received a 16-bit ASN within 30 days of the end — the
	// §6.3 "WhoWas" failed-deployment signature.
	Replaced16            int
	ReplacedChecked       int
	shortUnused32Lifetime []int // indices, for the replacement check
}

// Unused profiles the unused-administrative-lives category (§6.3).
func (j *Joint) Unused() UnusedProfile {
	p := UnusedProfile{
		CountryUnused: make(map[string]int),
		CountryTotal:  make(map[string]int),
	}
	siblings := j.Admin.SiblingCounts()
	unusedPerASN := make(map[asn.ASN]int)
	livesPerASN := make(map[asn.ASN]int)

	// Index 16-bit allocation starts by organization for the
	// failed-32-bit replacement check.
	type orgStart struct {
		start int32
	}
	_ = orgStart{}
	starts16 := make(map[string][]int32)
	for _, al := range j.Admin.Lifetimes {
		if !al.Is32Bit() && al.OpaqueID != "" {
			starts16[al.OpaqueID] = append(starts16[al.OpaqueID], int32(al.Span.Start))
		}
	}
	for _, list := range starts16 {
		sort.Slice(list, func(i, k int) bool { return list[i] < list[k] })
	}

	for ai, cat := range j.AdminCat {
		al := &j.Admin.Lifetimes[ai]
		livesPerASN[al.ASN]++
		if al.CC != "" {
			p.CountryTotal[al.CC]++
		}
		if cat != CatUnused {
			continue
		}
		p.Lives++
		unusedPerASN[al.ASN]++
		p.DurationsByRIR[al.RIR] = append(p.DurationsByRIR[al.RIR], al.Span.Days())
		if al.CC != "" {
			p.CountryUnused[al.CC]++
		}
		if len(siblings[al.OpaqueID]) > 1 {
			p.SiblingUnused++
		}
		if al.Span.Days() <= 31 {
			p.ShortUnusedTotal[al.RIR]++
			if al.Is32Bit() {
				p.ShortUnused32[al.RIR]++
				// Replacement check: did the same organization receive a
				// 16-bit ASN within 30 days after this life ended?
				if al.OpaqueID != "" {
					p.ReplacedChecked++
					list := starts16[al.OpaqueID]
					lo := int32(al.Span.End)
					i := sort.Search(len(list), func(k int) bool { return list[k] >= lo })
					if i < len(list) && list[i] <= lo+30 {
						p.Replaced16++
					}
				}
			}
		}
	}
	p.ASNs = len(unusedPerASN)
	for a, n := range unusedPerASN {
		if n == livesPerASN[a] {
			p.NeverUsedASNs++
		}
	}
	return p
}

// CountryDisproportion lists countries by unused-life count with their
// unused fraction — the §6.3 China analysis.
type CountryDisproportion struct {
	CC             string
	Unused, Total  int
	UnusedFraction float64
}

// TopUnusedCountries ranks countries by unused administrative lives.
func (p *UnusedProfile) TopUnusedCountries(n int) []CountryDisproportion {
	out := make([]CountryDisproportion, 0, len(p.CountryUnused))
	for cc, u := range p.CountryUnused {
		t := p.CountryTotal[cc]
		frac := 0.0
		if t > 0 {
			frac = float64(u) / float64(t)
		}
		out = append(out, CountryDisproportion{CC: cc, Unused: u, Total: t, UnusedFraction: frac})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Unused != out[j].Unused {
			return out[i].Unused > out[j].Unused
		}
		return out[i].CC < out[j].CC
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
