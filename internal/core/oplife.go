package core

import (
	"context"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/intervals"
)

// DefaultInactivityTimeout is the paper's operational-lifetime timeout:
// an ASN starts a new operational life only after more than 30 days of
// BGP inactivity (§4.2).
const DefaultInactivityTimeout = 30

// OpLifetime is one operational life of an ASN.
type OpLifetime struct {
	ASN  asn.ASN
	Span intervals.Interval
}

// OpIndex holds the operational lifetimes and the underlying activity.
type OpIndex struct {
	Timeout   int
	Lifetimes []OpLifetime
	Activity  *bgpscan.Activity
	byASN     map[asn.ASN][]int
}

// BuildOpLifetimes segments each ASN's activity days into operational
// lifetimes using the inactivity timeout.
func BuildOpLifetimes(act *bgpscan.Activity, timeout int) *OpIndex {
	return BuildOpLifetimesParallel(act, timeout, 1)
}

// Of returns the operational lifetime indices of an ASN in time order.
func (idx *OpIndex) Of(a asn.ASN) []int { return idx.byASN[a] }

// SpansOf returns the operational spans of an ASN.
func (idx *OpIndex) SpansOf(a asn.ASN) []intervals.Interval {
	ids := idx.byASN[a]
	out := make([]intervals.Interval, len(ids))
	for i, id := range ids {
		out[i] = idx.Lifetimes[id].Span
	}
	return out
}

// ASNs returns the number of distinct ASNs with at least one lifetime.
func (idx *OpIndex) ASNs() int { return len(idx.byASN) }

// GapDistribution returns every per-ASN activity gap length (in days)
// across the raw activity — the red CDF of Figure 3.
func GapDistribution(act *bgpscan.Activity) []int {
	return NewActivityColumns(act).GapDistribution()
}

// TimeoutSensitivity evaluates one candidate timeout value for Figure 3
// and Table 5.
type TimeoutSensitivity struct {
	Timeout int
	// GapFractionBelow is the fraction of activity gaps with length <=
	// Timeout (the red CDF evaluated at the timeout).
	GapFractionBelow float64
	// AdminWithOneOrLessOpLives is the fraction of administrative
	// lifetimes containing at most one operational life under this
	// timeout (the blue dotted CDF).
	AdminWithOneOrLessOpLives float64
	// OpLifetimes is the total operational lifetime count.
	OpLifetimes int
}

// SweepTimeouts computes the Figure 3 series for each candidate timeout.
// admin supplies the administrative lifetimes used by the blue curve.
// The activity is flattened into columnar form once; every candidate
// timeout then re-segments the same two day arrays.
func SweepTimeouts(act *bgpscan.Activity, admin *AdminIndex, timeouts []int) []TimeoutSensitivity {
	cols := NewActivityColumns(act)
	gaps := cols.GapDistribution()
	out := make([]TimeoutSensitivity, 0, len(timeouts))
	for _, to := range timeouts {
		idx, _ := cols.BuildOpLifetimes(context.Background(), to, 1)
		below := sort.SearchInts(gaps, to+1)
		frac := 0.0
		if len(gaps) > 0 {
			frac = float64(below) / float64(len(gaps))
		}
		out = append(out, TimeoutSensitivity{
			Timeout:                   to,
			GapFractionBelow:          frac,
			AdminWithOneOrLessOpLives: fractionAdminWithAtMostOneOpLife(admin, idx),
			OpLifetimes:               len(idx.Lifetimes),
		})
	}
	return out
}

// fractionAdminWithAtMostOneOpLife computes the blue dotted curve of
// Figure 3: the share of administrative lifetimes containing one or no
// operational lifetimes.
func fractionAdminWithAtMostOneOpLife(admin *AdminIndex, ops *OpIndex) float64 {
	if len(admin.Lifetimes) == 0 {
		return 0
	}
	good := 0
	for _, al := range admin.Lifetimes {
		contained := 0
		for _, oi := range ops.Of(al.ASN) {
			if al.Span.ContainsInterval(ops.Lifetimes[oi].Span) {
				contained++
				if contained > 1 {
					break
				}
			}
		}
		if contained <= 1 {
			good++
		}
	}
	return float64(good) / float64(len(admin.Lifetimes))
}
