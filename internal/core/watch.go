package core

import (
	"fmt"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// This file operationalizes the paper's §9 "practical relevance"
// discussion: the dual-lens dataset as a near-realtime reference for
// catching misconfigurations and malicious announcements — "e.g., by
// filtering all ASNs that are not delegated".

// Validator answers, for any day, whether an AS number was delegated —
// the check §9 argues operators could apply to announcements.
type Validator struct {
	admin *AdminIndex
}

// NewValidator builds a delegation validator over the reconstructed
// administrative lifetimes.
func NewValidator(admin *AdminIndex) *Validator { return &Validator{admin: admin} }

// DelegatedOn reports whether a was administratively delegated on day d.
func (v *Validator) DelegatedOn(a asn.ASN, d dates.Day) bool {
	for _, ai := range v.admin.Of(a) {
		if v.admin.Lifetimes[ai].Span.Contains(d) {
			return true
		}
	}
	return false
}

// EverDelegated reports whether a appears anywhere in the delegation
// record.
func (v *Validator) EverDelegated(a asn.ASN) bool { return len(v.admin.Of(a)) > 0 }

// EventKind classifies watch events.
type EventKind uint8

// Watch event kinds, ordered roughly by the §6 category they come from.
const (
	// EventDormantAwakening: an allocated ASN resumed announcing after a
	// long dormancy with a short burst (§6.1.2's squat signature).
	EventDormantAwakening EventKind = iota
	// EventPostDeallocUse: an ASN appeared in BGP after its delegation
	// ended (§6.4's abuse-of-returned-resources signature).
	EventPostDeallocUse
	// EventUndelegatedOrigin: a never-delegated ASN appeared in BGP.
	EventUndelegatedOrigin
	// EventLookalikeOrigin: the undelegated origin resembles an existing
	// ASN (failed prepend or mistyped origin — §6.4's fat fingers).
	EventLookalikeOrigin
	// EventLargeASNLeak: an undelegated origin with more digits than any
	// delegated ASN (internal numbering leaking out).
	EventLargeASNLeak
)

var eventNames = [...]string{
	"dormant-awakening", "post-deallocation-use", "undelegated-origin",
	"lookalike-origin", "large-asn-leak",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one entry of the chronological anomaly feed.
type Event struct {
	Day    dates.Day // when the behaviour began
	ASN    asn.ASN
	Kind   EventKind
	Span   intervals.Interval // the operational life involved
	Victim asn.ASN            // resembled / squatted party, when known
	Detail string
}

// WatchEvents derives the chronological anomaly feed from the joint
// dataset: every §6 behaviour the paper highlights as operationally
// actionable, ordered by start day.
func (j *Joint) WatchEvents(squat SquatParams) []Event {
	var out []Event

	for _, f := range j.DetectDormantSquats(squat) {
		e := Event{
			Day: f.OpSpan.Start, ASN: f.ASN, Kind: EventDormantAwakening,
			Span: f.OpSpan,
			Detail: fmt.Sprintf("awoke after %d dormant days for %d days (%.1f%% of its administrative life), peaking at %d prefixes/day",
				f.DormantDays, f.OpSpan.Days(), 100*f.RelDuration, f.PeakPrefixCount),
		}
		if len(f.Upstreams) > 0 {
			e.Victim = 0
			e.Detail += fmt.Sprintf("; main upstream AS%s", f.Upstreams[0])
		}
		out = append(out, e)
	}

	outside := j.Outside()
	for _, f := range outside.Findings {
		if f.Bogon {
			continue
		}
		switch f.Kind {
		case OutPostDealloc:
			detail := "announced while not delegated"
			if f.Hijack {
				detail = fmt.Sprintf("announced %d days after deallocation and %s since any previous activity — hijack pattern",
					f.DaysSinceDealloc, quietString(f.DaysSincePrevOp))
			}
			out = append(out, Event{
				Day: f.Span.Start, ASN: f.ASN, Kind: EventPostDeallocUse,
				Span: f.Span, Detail: detail,
			})
		case OutFatFingerPrepend:
			out = append(out, Event{
				Day: f.Span.Start, ASN: f.ASN, Kind: EventLookalikeOrigin,
				Span: f.Span, Victim: f.Victim,
				Detail: fmt.Sprintf("origin is AS%s written twice — failed prepend", f.Victim),
			})
		case OutFatFingerMOAS:
			out = append(out, Event{
				Day: f.Span.Start, ASN: f.ASN, Kind: EventLookalikeOrigin,
				Span: f.Span, Victim: f.Victim,
				Detail: fmt.Sprintf("one digit away from delegated AS%s — mistyped origin causing MOAS", f.Victim),
			})
		case OutLargeLeak:
			out = append(out, Event{
				Day: f.Span.Start, ASN: f.ASN, Kind: EventLargeASNLeak,
				Span:   f.Span,
				Detail: "more digits than any delegated ASN — internal numbering leaking",
			})
		default:
			out = append(out, Event{
				Day: f.Span.Start, ASN: f.ASN, Kind: EventUndelegatedOrigin,
				Span: f.Span, Detail: "never delegated by any registry",
			})
		}
	}

	sort.SliceStable(out, func(i, k int) bool {
		if out[i].Day != out[k].Day {
			return out[i].Day < out[k].Day
		}
		return out[i].ASN < out[k].ASN
	})
	return out
}

func quietString(days int) string {
	if days < 0 {
		return "never active"
	}
	return fmt.Sprintf("%d days", days)
}
