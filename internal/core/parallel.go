package core

import (
	"context"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/parallel"
	"parallellives/internal/restore"
)

// This file holds the sharded variants of the §4/§5 builders. Lifetimes
// of different ASNs never interact, so every shard here is aligned on
// ASN-group boundaries: one shard owns every run, lifetime and activity
// row of its ASNs, making the shards write-disjoint. Outputs are
// recombined by plain concatenation in shard order, which reproduces the
// sequential iteration order exactly — the sequential builders are the
// workers==1 case of these functions, not separate code paths.

// asnGroups returns the [Lo, Hi) index ranges of the maximal same-ASN
// groups of the runs slice (which is sorted by ASN).
func asnGroups(runs []restore.Run) []parallel.Range {
	var out []parallel.Range
	for i := 0; i < len(runs); {
		j := i
		for j < len(runs) && runs[j].ASN == runs[i].ASN {
			j++
		}
		out = append(out, parallel.Range{Lo: i, Hi: j})
		i = j
	}
	return out
}

// adminGroups returns the same-ASN group ranges of a lifetime slice
// sorted by ASN.
func adminGroups(ls []AdminLifetime) []parallel.Range {
	var out []parallel.Range
	for i := 0; i < len(ls); {
		j := i
		for j < len(ls) && ls[j].ASN == ls[i].ASN {
			j++
		}
		out = append(out, parallel.Range{Lo: i, Hi: j})
		i = j
	}
	return out
}

// BuildAdminLifetimesParallel is BuildAdminLifetimes with the per-ASN
// merge work sharded across workers goroutines. Each shard owns a
// contiguous range of ASN groups and produces its lifetimes and merge
// counters independently; concatenating the shard outputs in order
// reproduces the sequential pre-sort order, so the final stable sort and
// the whole-output tallies yield bit-for-bit the sequential result.
func BuildAdminLifetimesParallel(res *restore.Result, workers int) ([]AdminLifetime, AdminStats) {
	out, stats, _ := BuildAdminLifetimesParallelContext(context.Background(), res, workers)
	return out, stats
}

// BuildAdminLifetimesParallelContext is BuildAdminLifetimesParallel
// with cooperative cancellation: a cancelled ctx abandons unstarted
// shards and returns ctx's error instead of a partial result. The
// builders themselves are infallible — ctx's error is the only one.
func BuildAdminLifetimesParallelContext(ctx context.Context, res *restore.Result, workers int) ([]AdminLifetime, AdminStats, error) {
	runs := res.Runs
	groups := asnGroups(runs)
	shards := parallel.Shards(len(groups), workers)

	parts := make([][]AdminLifetime, len(shards))
	partStats := make([]AdminStats, len(shards))
	if err := parallel.ForEach(ctx, len(shards), workers, func(_ context.Context, si int) error {
		var sc runScratch // one partition scratch per shard, reused per group
		for _, g := range groups[shards[si].Lo:shards[si].Hi] {
			parts[si] = appendLifetimes(parts[si], runs[g.Lo:g.Hi], &partStats[si], &sc)
		}
		return nil
	}); err != nil {
		return nil, AdminStats{}, err
	}

	var stats AdminStats
	total := 0
	for si := range parts {
		total += len(parts[si])
		stats.MergedSameRegDate += partStats[si].MergedSameRegDate
		stats.MergedAfriNIC += partStats[si].MergedAfriNIC
		stats.MergedTransfers += partStats[si].MergedTransfers
		stats.SplitNewRegDate += partStats[si].SplitNewRegDate
		stats.InterRIRTransfers += partStats[si].InterRIRTransfers
		stats.TotalDelegatedRuns += partStats[si].TotalDelegatedRuns
		stats.ReservedRunsSkipped += partStats[si].ReservedRunsSkipped
	}
	out := make([]AdminLifetime, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}

	sort.SliceStable(out, func(a, b int) bool {
		if out[a].ASN != out[b].ASN {
			return out[a].ASN < out[b].ASN
		}
		return out[a].Span.Start < out[b].Span.Start
	})
	stats.Lifetimes = len(out)
	seen := make(map[asn.ASN]int)
	for _, l := range out {
		seen[l.ASN]++
		if l.Open {
			stats.OpenLifetimes++
		}
	}
	stats.ASNs = len(seen)
	for _, n := range seen {
		if n > 1 {
			stats.ReallocatedASNs++
		}
	}
	return out, stats, nil
}

// BuildOpLifetimesParallel is BuildOpLifetimes with the per-ASN timeout
// segmentation sharded across workers goroutines. ASNs are processed in
// sorted order within contiguous shards; the index is rebuilt by a
// sequential concatenation pass, so lifetime order and indices match the
// sequential build exactly.
func BuildOpLifetimesParallel(act *bgpscan.Activity, timeout, workers int) *OpIndex {
	idx, _ := BuildOpLifetimesParallelContext(context.Background(), act, timeout, workers)
	return idx
}

// BuildOpLifetimesParallelContext is BuildOpLifetimesParallel with
// cooperative cancellation (ctx's error is the only possible one). The
// segmentation runs over a columnar view of the activity built here;
// callers sweeping many timeouts over one activity should build the
// ActivityColumns once and call its BuildOpLifetimes directly.
func BuildOpLifetimesParallelContext(ctx context.Context, act *bgpscan.Activity, timeout, workers int) (*OpIndex, error) {
	return NewActivityColumns(act).BuildOpLifetimes(ctx, timeout, workers)
}

// AnalyzeParallel is Analyze with the admin-side classification sharded
// across workers goroutines. Shards are aligned on admin ASN groups: the
// operational lifetimes an admin lifetime can mark as overlapped or
// contained all share its ASN, so one shard owns every write to a given
// ASN's op flags and the shards are write-disjoint. The op-side
// classification reads the merged flags sequentially afterwards.
func AnalyzeParallel(admin *AdminIndex, ops *OpIndex, workers int) *Joint {
	j, _ := AnalyzeParallelContext(context.Background(), admin, ops, workers)
	return j
}

// AnalyzeParallelContext is AnalyzeParallel with cooperative
// cancellation (ctx's error is the only possible one).
func AnalyzeParallelContext(ctx context.Context, admin *AdminIndex, ops *OpIndex, workers int) (*Joint, error) {
	j := &Joint{
		Admin:        admin,
		Ops:          ops,
		AdminCat:     make([]Category, len(admin.Lifetimes)),
		OpCat:        make([]Category, len(ops.Lifetimes)),
		ContainedOps: make([][]int, len(admin.Lifetimes)),
		OverlapOps:   make([][]int, len(admin.Lifetimes)),
	}
	opOverlapped := make([]bool, len(ops.Lifetimes))
	opContained := make([]bool, len(ops.Lifetimes))

	groups := adminGroups(admin.Lifetimes)
	shards := parallel.Shards(len(groups), workers)
	if err := parallel.ForEach(ctx, len(shards), workers, func(_ context.Context, si int) error {
		for _, g := range groups[shards[si].Lo:shards[si].Hi] {
			for ai := g.Lo; ai < g.Hi; ai++ {
				al := &admin.Lifetimes[ai]
				cat := CatUnused
				for _, oi := range ops.Of(al.ASN) {
					ol := &ops.Lifetimes[oi]
					if !al.Span.Overlaps(ol.Span) {
						continue
					}
					j.OverlapOps[ai] = append(j.OverlapOps[ai], oi)
					opOverlapped[oi] = true
					if al.Span.ContainsInterval(ol.Span) {
						j.ContainedOps[ai] = append(j.ContainedOps[ai], oi)
						opContained[oi] = true
						if cat == CatUnused {
							cat = CatComplete
						}
					} else {
						cat = CatPartial
					}
				}
				j.AdminCat[ai] = cat
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for oi := range ops.Lifetimes {
		switch {
		case opContained[oi]:
			j.OpCat[oi] = CatComplete
		case opOverlapped[oi]:
			j.OpCat[oi] = CatPartial
		default:
			j.OpCat[oi] = CatOutside
		}
	}
	return j, nil
}
