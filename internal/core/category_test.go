package core

import (
	"encoding/json"
	"testing"
)

// TestCategoryWireContract pins the frozen code/token pairs. Changing
// any expectation here breaks every snapshot and API client in the
// field, so a failure means the code must change back, not the test.
func TestCategoryWireContract(t *testing.T) {
	wire := []struct {
		cat   Category
		code  uint8
		token string
	}{
		{CatComplete, 0, "complete"},
		{CatPartial, 1, "partial"},
		{CatUnused, 2, "unused"},
		{CatOutside, 3, "outside"},
	}
	for _, w := range wire {
		if got := w.cat.Code(); got != w.code {
			t.Errorf("%v.Code() = %d, want %d", w.cat, got, w.code)
		}
		if got := w.cat.Token(); got != w.token {
			t.Errorf("%v.Token() = %q, want %q", w.cat, got, w.token)
		}
		back, err := CategoryFromCode(w.code)
		if err != nil || back != w.cat {
			t.Errorf("CategoryFromCode(%d) = %v, %v", w.code, back, err)
		}
		parsed, err := ParseCategory(w.token)
		if err != nil || parsed != w.cat {
			t.Errorf("ParseCategory(%q) = %v, %v", w.token, parsed, err)
		}
	}
}

func TestCategoryJSONRoundTrip(t *testing.T) {
	for _, c := range []Category{CatComplete, CatPartial, CatUnused, CatOutside} {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + c.Token() + `"`; string(b) != want {
			t.Errorf("marshal %v = %s, want %s", c, b, want)
		}
		var back Category
		if err := json.Unmarshal(b, &back); err != nil || back != c {
			t.Errorf("unmarshal %s = %v, %v", b, back, err)
		}
	}
	if _, err := CategoryFromCode(200); err == nil {
		t.Error("unknown code accepted")
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("unknown token accepted")
	}
	var c Category
	if err := c.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("UnmarshalText accepted an unknown token")
	}
}
