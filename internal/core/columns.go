package core

import (
	"context"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/intervals"
	"parallellives/internal/parallel"
)

// ActivityColumns is the columnar (SoA) view of an Activity: every ASN's
// day set flattened, in ascending ASN order, into one pair of parallel
// start/end arrays with a row-offset table marking each ASN's range.
// Building it costs one pass over the activity; afterwards every timeout
// segmentation and gap walk reads two dense arrays front to back — no
// per-ASN slice allocations, no pointer chasing — which is what makes
// sweeping many candidate timeouts over one activity cheap.
type ActivityColumns struct {
	act  *bgpscan.Activity
	asns []asn.ASN // ascending; one entry per ASN with activity
	off  []int     // len(asns)+1; rows [off[i], off[i+1]) hold asns[i]'s set
	cols intervals.Columns
}

// NewActivityColumns flattens act into columnar form.
func NewActivityColumns(act *bgpscan.Activity) *ActivityColumns {
	asns := make([]asn.ASN, 0, len(act.ASNs))
	rows := 0
	for a, aa := range act.ASNs {
		asns = append(asns, a)
		rows += len(aa.Days)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	ac := &ActivityColumns{act: act, asns: asns, off: make([]int, len(asns)+1)}
	ac.cols.Grow(rows)
	for i, a := range asns {
		ac.off[i] = ac.cols.Len()
		ac.cols.AppendSet(act.ASNs[a].Days)
	}
	ac.off[len(asns)] = ac.cols.Len()
	return ac
}

// GapDistribution returns every per-ASN activity gap length in days,
// sorted ascending — identical to the package-level GapDistribution, but
// walking the flat columns with exactly one output allocation.
func (ac *ActivityColumns) GapDistribution() []int {
	// Each ASN with k rows contributes k-1 gaps.
	total := ac.cols.Len() - len(ac.asns)
	if total < 0 {
		total = 0
	}
	out := make([]int, 0, total)
	for gi := range ac.asns {
		out = ac.cols.AppendGaps(out, ac.off[gi], ac.off[gi+1])
	}
	sort.Ints(out)
	return out
}

// BuildOpLifetimes segments the columnar activity into operational
// lifetimes with the inactivity timeout, sharded across workers. Output
// is bit-identical to the sequential builder for any worker count: ASNs
// are ascending, shards are contiguous ranges of them, and shard outputs
// concatenate in shard order.
func (ac *ActivityColumns) BuildOpLifetimes(ctx context.Context, timeout, workers int) (*OpIndex, error) {
	shards := parallel.Shards(len(ac.asns), workers)
	parts := make([][]OpLifetime, len(shards))
	if err := parallel.ForEach(ctx, len(shards), workers, func(_ context.Context, si int) error {
		// A segment consumes at least one row, so the shard's row count
		// bounds its lifetime count: one allocation per shard.
		out := make([]OpLifetime, 0, ac.off[shards[si].Hi]-ac.off[shards[si].Lo])
		start, end := ac.cols.Start, ac.cols.End
		for gi := shards[si].Lo; gi < shards[si].Hi; gi++ {
			lo, hi := ac.off[gi], ac.off[gi+1]
			if lo == hi {
				continue
			}
			a := ac.asns[gi]
			cur := intervals.Interval{Start: start[lo], End: end[lo]}
			for r := lo + 1; r < hi; r++ {
				if start[r].Sub(cur.End)-1 > timeout {
					out = append(out, OpLifetime{ASN: a, Span: cur})
					cur = intervals.Interval{Start: start[r], End: end[r]}
				} else {
					cur.End = end[r]
				}
			}
			out = append(out, OpLifetime{ASN: a, Span: cur})
		}
		parts[si] = out
		return nil
	}); err != nil {
		return nil, err
	}

	total := 0
	for _, p := range parts {
		total += len(p)
	}
	idx := &OpIndex{
		Timeout:   timeout,
		Activity:  ac.act,
		Lifetimes: make([]OpLifetime, 0, total),
		byASN:     make(map[asn.ASN][]int, len(ac.asns)),
	}
	for _, p := range parts {
		idx.Lifetimes = append(idx.Lifetimes, p...)
	}
	// Lifetimes are globally ASN-sorted, so each ASN's indices are one
	// contiguous run: the per-ASN index slices all view one shared
	// sequential array instead of growing a small slice per ASN.
	seq := make([]int, total)
	for i := range seq {
		seq[i] = i
	}
	for i := 0; i < total; {
		j := i
		for j < total && idx.Lifetimes[j].ASN == idx.Lifetimes[i].ASN {
			j++
		}
		idx.byASN[idx.Lifetimes[i].ASN] = seq[i:j:j]
		i = j
	}
	return idx, nil
}
