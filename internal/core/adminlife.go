// Package core implements the paper's primary contribution: the
// construction of administrative and operational ASN lifetimes (§4) and
// their joint analysis (§5, §6) — the taxonomy of overlap behaviours,
// the utilization measures, and the detectors for dormant-ASN squatting,
// dangling announcements, fat-finger misconfigurations and internal-ASN
// leaks.
package core

import (
	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/restore"
)

// AdminLifetime is one administrative life of an ASN per the §4.1 rules:
// a maximal span over which the ASN was continuously held by the same
// organization, merging across reserved quarantines and registry
// transfers when the registration date (or the AfriNIC exception, or a
// contiguous inter-RIR transfer) says the holder did not change.
type AdminLifetime struct {
	ASN asn.ASN
	// RIR is the registry holding the ASN at the end of the lifetime
	// (the destination registry for transferred ASNs).
	RIR      asn.RIR
	CC       string
	OpaqueID string
	RegDate  dates.Day
	Span     intervals.Interval
	// Open marks lifetimes still allocated in the last file scanned.
	Open bool
	// Transferred marks lifetimes that crossed registries.
	Transferred bool
	// Pieces counts the delegated runs merged into this lifetime.
	Pieces int
}

// Is32Bit reports whether the lifetime concerns a 32-bit AS number.
func (l AdminLifetime) Is32Bit() bool { return l.ASN.Is32Bit() }

// AdminStats counts merge decisions, for reporting and tests.
type AdminStats struct {
	Lifetimes           int
	ASNs                int
	MergedSameRegDate   int // reserved/disappeared spans rejoined (§4.1)
	MergedAfriNIC       int // AfriNIC reserved→allocated exception
	MergedTransfers     int // contiguous inter-RIR transfers
	SplitNewRegDate     int // reallocation detected by a new date
	InterRIRTransfers   int
	ReallocatedASNs     int // ASNs with more than one lifetime
	OpenLifetimes       int
	TotalDelegatedRuns  int
	ReservedRunsSkipped int
}

// BuildAdminLifetimes applies the §4.1 rules to the restored status runs.
func BuildAdminLifetimes(res *restore.Result) ([]AdminLifetime, AdminStats) {
	return BuildAdminLifetimesParallel(res, 1)
}

// runScratch holds the reusable per-group partitions of appendLifetimes.
// One scratch serves one goroutine's group loop: nothing built from it
// outlives the call, so the backing arrays are recycled group to group.
type runScratch struct {
	delegated []restore.Run
	reserved  []restore.Run
}

// appendLifetimes merges one ASN's runs into lifetimes.
func appendLifetimes(out []AdminLifetime, group []restore.Run, stats *AdminStats, sc *runScratch) []AdminLifetime {
	// Select delegated runs in time order; keep reserved runs for the
	// AfriNIC exception test.
	delegated := sc.delegated[:0]
	reserved := sc.reserved[:0]
	for _, r := range group {
		if r.Delegated() {
			delegated = append(delegated, r)
			stats.TotalDelegatedRuns++
		} else {
			reserved = append(reserved, r)
			stats.ReservedRunsSkipped++
		}
	}
	sc.delegated, sc.reserved = delegated[:0], reserved[:0]
	if len(delegated) == 0 {
		return out
	}

	cur := lifetimeFromRun(delegated[0])
	for _, r := range delegated[1:] {
		if mergeReason := shouldMerge(cur, r, reserved); mergeReason != mergeNo {
			switch mergeReason {
			case mergeSameDate:
				stats.MergedSameRegDate++
			case mergeAfriNIC:
				stats.MergedAfriNIC++
			case mergeTransfer:
				stats.MergedTransfers++
				cur.Transferred = true
				stats.InterRIRTransfers++
			}
			cur.Span.End = r.Span.End
			cur.RIR = r.RIR
			if r.CC != "" {
				cur.CC = r.CC
			}
			if r.OpaqueID != "" {
				cur.OpaqueID = r.OpaqueID
			}
			cur.Open = r.OpenAtEnd
			cur.Pieces++
			continue
		}
		stats.SplitNewRegDate++
		out = append(out, cur)
		cur = lifetimeFromRun(r)
	}
	return append(out, cur)
}

func lifetimeFromRun(r restore.Run) AdminLifetime {
	return AdminLifetime{
		ASN: r.ASN, RIR: r.RIR, CC: r.CC, OpaqueID: r.OpaqueID,
		RegDate: r.RegDate, Span: r.Span, Open: r.OpenAtEnd, Pieces: 1,
	}
}

type mergeReason uint8

const (
	mergeNo mergeReason = iota
	mergeSameDate
	mergeAfriNIC
	mergeTransfer
)

// shouldMerge decides whether run r continues the lifetime cur, per the
// §4.1 rules.
func shouldMerge(cur AdminLifetime, r restore.Run, reserved []restore.Run) mergeReason {
	gap := r.Span.Start.Sub(cur.Span.End) - 1

	if r.RIR != cur.RIR {
		// Inter-RIR transfer: one lifetime iff there is no gap between
		// the allocations.
		if gap == 0 {
			return mergeTransfer
		}
		return mergeNo
	}
	// Same registry, after a reserved spell or a disappearance: the
	// registration date discriminates same-holder (merge) from
	// reallocation (split).
	if r.RegDate == cur.RegDate && r.RegDate != dates.None {
		return mergeSameDate
	}
	// AfriNIC exception: reserved for the whole gap and re-allocated
	// without ever becoming available means the previous holder got it
	// back, even under a new registration date.
	if r.RIR == asn.AfriNIC && gap > 0 {
		gapIv := intervals.New(cur.Span.End.AddDays(1), r.Span.Start.AddDays(-1))
		covered := 0
		for _, res := range reserved {
			if iv, ok := res.Span.Intersect(gapIv); ok {
				covered += iv.Days()
			}
		}
		if covered >= gapIv.Days() {
			return mergeAfriNIC
		}
	}
	return mergeNo
}

// AdminIndex groups lifetimes by ASN for joint analysis.
type AdminIndex struct {
	Lifetimes []AdminLifetime
	byASN     map[asn.ASN][]int
}

// NewAdminIndex indexes lifetimes (which must be sorted by ASN, start —
// as BuildAdminLifetimes returns them).
func NewAdminIndex(lifetimes []AdminLifetime) *AdminIndex {
	idx := &AdminIndex{Lifetimes: lifetimes, byASN: make(map[asn.ASN][]int)}
	for i, l := range lifetimes {
		idx.byASN[l.ASN] = append(idx.byASN[l.ASN], i)
	}
	return idx
}

// Of returns the lifetime indices of an ASN.
func (idx *AdminIndex) Of(a asn.ASN) []int { return idx.byASN[a] }

// SiblingCounts returns, for each opaque organization id, the set of
// ASNs it held — the §6.1/§6.3 sibling analysis input.
func (idx *AdminIndex) SiblingCounts() map[string][]asn.ASN {
	out := make(map[string][]asn.ASN)
	for _, l := range idx.Lifetimes {
		if l.OpaqueID == "" {
			continue
		}
		list := out[l.OpaqueID]
		if len(list) == 0 || list[len(list)-1] != l.ASN {
			out[l.OpaqueID] = append(list, l.ASN)
		}
	}
	return out
}
