package core

import (
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// SquatParams are the §6.1.2 detection thresholds. The paper sets them
// deliberately coarse: 1000 days of dormancy and a post-dormant life no
// longer than 5% of its administrative life.
type SquatParams struct {
	MinDormancyDays int
	MaxRelDuration  float64
}

// DefaultSquatParams returns the paper's thresholds.
func DefaultSquatParams() SquatParams {
	return SquatParams{MinDormancyDays: 1000, MaxRelDuration: 0.05}
}

// SquatFinding is one operational life flagged as a possible squat of a
// dormant ASN.
type SquatFinding struct {
	ASN asn.ASN
	// AdminIdx / OpIdx locate the lifetimes in the Joint indexes.
	AdminIdx, OpIdx int
	OpSpan          intervals.Interval
	// DormantDays is the inactivity run preceding the operational life
	// (from the allocation start or the previous operational life).
	DormantDays int
	// RelDuration is opDays / adminDays.
	RelDuration float64
	// PeakPrefixCount is the largest daily distinct-prefix origination
	// count during the flagged life — squats typically spike (Fig. 8).
	PeakPrefixCount int
	// Upstreams lists the first-hop neighbors observed for the origin,
	// most frequent first; shared upstreams across findings indicate
	// coordination (§6.1.2's hijack-factory pattern).
	Upstreams []asn.ASN
}

// DetectDormantSquats applies the §6.1.2 filter to every complete-overlap
// administrative lifetime: an operational life is flagged when it starts
// after at least MinDormancyDays of inactivity (since the allocation or
// the previous operational life) and lasts at most MaxRelDuration of the
// administrative life.
func (j *Joint) DetectDormantSquats(p SquatParams) []SquatFinding {
	var out []SquatFinding
	for ai, cat := range j.AdminCat {
		if cat != CatComplete {
			continue
		}
		al := &j.Admin.Lifetimes[ai]
		adminDays := al.Span.Days()
		// Dormancy runs from the allocation start — but never before BGP
		// observation begins, where inactivity is unknowable rather than
		// dormant (administrative lives can predate the window by years).
		prevEnd := al.Span.Start.AddDays(-1)
		if obs := j.Ops.Activity.Start; obs != dates.None && obs.AddDays(-1) > prevEnd {
			prevEnd = obs.AddDays(-1)
		}
		for _, oi := range j.ContainedOps[ai] {
			ol := &j.Ops.Lifetimes[oi]
			dormant := ol.Span.Start.Sub(prevEnd) - 1
			rel := float64(ol.Span.Days()) / float64(adminDays)
			if dormant >= p.MinDormancyDays && rel <= p.MaxRelDuration {
				out = append(out, SquatFinding{
					ASN: al.ASN, AdminIdx: ai, OpIdx: oi, OpSpan: ol.Span,
					DormantDays: dormant, RelDuration: rel,
					PeakPrefixCount: j.peakPrefixes(al.ASN, ol.Span),
					Upstreams:       j.upstreamsOf(al.ASN),
				})
			}
			prevEnd = ol.Span.End
		}
	}
	return out
}

// peakPrefixes returns the maximum daily origination count of a within
// span.
func (j *Joint) peakPrefixes(a asn.ASN, span intervals.Interval) int {
	act := j.Ops.Activity.ASNs[a]
	if act == nil {
		return 0
	}
	peak := 0
	for _, run := range act.PrefixRuns {
		if run.To < span.Start || run.From > span.End {
			continue
		}
		if run.Count > peak {
			peak = run.Count
		}
	}
	return peak
}

// upstreamsOf returns the origin's observed first-hop neighbors, most
// frequent first.
func (j *Joint) upstreamsOf(a asn.ASN) []asn.ASN {
	act := j.Ops.Activity.ASNs[a]
	if act == nil || len(act.Upstreams) == 0 {
		return nil
	}
	type uc struct {
		a asn.ASN
		n int64
	}
	ups := make([]uc, 0, len(act.Upstreams))
	for u, n := range act.Upstreams {
		ups = append(ups, uc{u, n})
	}
	sort.Slice(ups, func(i, j int) bool {
		if ups[i].n != ups[j].n {
			return ups[i].n > ups[j].n
		}
		return ups[i].a < ups[j].a
	})
	out := make([]asn.ASN, len(ups))
	for i, u := range ups {
		out[i] = u.a
	}
	return out
}

// CoordinatedGroups clusters squat findings that share a dominant
// upstream and overlap in time — the §6.1.2 signature of a hijack
// factory forging announcements for many squatted origins at once.
// Groups smaller than minSize are omitted.
func CoordinatedGroups(findings []SquatFinding, minSize int) map[asn.ASN][]SquatFinding {
	byUpstream := make(map[asn.ASN][]SquatFinding)
	for _, f := range findings {
		if len(f.Upstreams) == 0 {
			continue
		}
		byUpstream[f.Upstreams[0]] = append(byUpstream[f.Upstreams[0]], f)
	}
	for u, group := range byUpstream {
		if len(group) < minSize {
			delete(byUpstream, u)
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i].OpSpan.Start < group[j].OpSpan.Start })
		byUpstream[u] = group
	}
	return byUpstream
}

// PrefixSeries extracts the daily origination-count series of one ASN
// over [start, end] — the Figure 8 time series.
func (j *Joint) PrefixSeries(a asn.ASN, start, end dates.Day) []int {
	n := end.Sub(start) + 1
	out := make([]int, n)
	act := j.Ops.Activity.ASNs[a]
	if act == nil {
		return out
	}
	for _, run := range act.PrefixRuns {
		lo := dates.Max(run.From, start)
		hi := dates.Min(run.To, end)
		for d := lo; d <= hi; d++ {
			out[d.Sub(start)] = run.Count
		}
	}
	return out
}
