package core

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// buildActivity makes a bgpscan.Activity from explicit day intervals.
func buildActivity(m map[asn.ASN][]intervals.Interval) *bgpscan.Activity {
	act := &bgpscan.Activity{
		ASNs:  make(map[asn.ASN]*bgpscan.ASNActivity),
		Start: dates.None,
		End:   dates.None,
	}
	for a, ivs := range m {
		set := intervals.Normalize(ivs)
		act.ASNs[a] = &bgpscan.ASNActivity{Days: set}
		if sp, ok := set.Span(); ok {
			if act.Start == dates.None || sp.Start < act.Start {
				act.Start = sp.Start
			}
			if act.End == dates.None || sp.End > act.End {
				act.End = sp.End
			}
		}
	}
	return act
}

func joint(admin []AdminLifetime, act *bgpscan.Activity, timeout int) *Joint {
	ops := BuildOpLifetimes(act, timeout)
	return Analyze(NewAdminIndex(admin), ops)
}

func TestOpLifetimeSegmentation(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		// Two runs 10 days apart (bridged at timeout 30), then a run 60
		// days later (split).
		100: {iv("2010-01-01", "2010-02-01"), iv("2010-02-12", "2010-03-01"),
			iv("2010-05-01", "2010-06-01")},
	})
	ops := BuildOpLifetimes(act, 30)
	if len(ops.Lifetimes) != 2 {
		t.Fatalf("lifetimes = %v", ops.Lifetimes)
	}
	if ops.Lifetimes[0].Span != iv("2010-01-01", "2010-03-01") {
		t.Errorf("first = %v", ops.Lifetimes[0].Span)
	}
	// At timeout 100 everything merges.
	ops = BuildOpLifetimes(act, 100)
	if len(ops.Lifetimes) != 1 {
		t.Fatalf("timeout 100: lifetimes = %v", ops.Lifetimes)
	}
}

func TestTaxonomyClassification(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, RIR: asn.ARIN, Span: iv("2010-01-01", "2015-01-01")}, // complete
		{ASN: 2, RIR: asn.ARIN, Span: iv("2010-01-01", "2015-01-01")}, // partial (dangling)
		{ASN: 3, RIR: asn.ARIN, Span: iv("2010-01-01", "2015-01-01")}, // unused
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-06-01", "2014-01-01")},
		2: {iv("2014-01-01", "2016-06-01")}, // sticks out past dealloc
		4: {iv("2012-01-01", "2012-02-01")}, // never allocated
	})
	j := joint(admin, act, 30)
	tx := j.Taxonomy()
	want := TaxonomyCounts{
		AdminComplete: 1, AdminPartial: 1, AdminUnused: 1,
		OpComplete: 1, OpPartial: 1, OpOutside: 1,
	}
	if tx != want {
		t.Errorf("taxonomy = %+v, want %+v", tx, want)
	}
	if j.AdminCat[0] != CatComplete || j.AdminCat[1] != CatPartial || j.AdminCat[2] != CatUnused {
		t.Errorf("admin cats = %v", j.AdminCat)
	}
}

func TestUtilization(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2010-01-01", "2010-04-10")}, // 100 days
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-25")}, // 25 days
	})
	j := joint(admin, act, 30)
	u := j.Utilization()
	if len(u) != 1 || u[0] != 0.25 {
		t.Errorf("utilization = %v, want [0.25]", u)
	}
}

func TestUtilizationSkipsUnusedAndPartial(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2010-01-01", "2010-12-31")}, // unused
		{ASN: 2, Span: iv("2010-01-01", "2010-12-31")}, // partial
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		2: {iv("2009-06-01", "2010-06-01")},
	})
	j := joint(admin, act, 30)
	if u := j.Utilization(); len(u) != 0 {
		t.Errorf("utilization = %v, want empty", u)
	}
}

func TestDormantSquatDetector(t *testing.T) {
	admin := []AdminLifetime{
		// Allocated for ~4000 days, active briefly at the start, then a
		// short burst 2000 days later: a textbook dormant squat.
		{ASN: 1, Span: iv("2005-01-01", "2016-01-01")},
		// Control: continuously active.
		{ASN: 2, Span: iv("2005-01-01", "2016-01-01")},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2005-02-01", "2005-06-01"), iv("2011-01-01", "2011-01-20")},
		2: {iv("2005-02-01", "2015-12-01")},
	})
	j := joint(admin, act, 30)
	findings := j.DetectDormantSquats(DefaultSquatParams())
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	f := findings[0]
	if f.ASN != 1 || f.OpSpan != iv("2011-01-01", "2011-01-20") {
		t.Errorf("finding = %+v", f)
	}
	if f.DormantDays < 1000 || f.RelDuration > 0.05 {
		t.Errorf("finding thresholds wrong: %+v", f)
	}
}

func TestDormantSquatRespectsRelativeDuration(t *testing.T) {
	// A long comeback (not a short burst) must not be flagged.
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2005-01-01", "2016-01-01")},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2005-02-01", "2005-06-01"), iv("2011-01-01", "2014-01-01")},
	})
	j := joint(admin, act, 30)
	if findings := j.DetectDormantSquats(DefaultSquatParams()); len(findings) != 0 {
		t.Errorf("long comeback flagged: %+v", findings)
	}
}

func TestDormantFromAllocationStart(t *testing.T) {
	// Never active, then a burst years into the allocation.
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2005-01-01", "2016-01-01")},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2012-01-01", "2012-01-15")},
	})
	// BGP observation began well before the burst: the dormancy since
	// the allocation start is real, not a window artifact.
	act.Start = d("2005-01-01")
	j := joint(admin, act, 30)
	findings := j.DetectDormantSquats(DefaultSquatParams())
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].DormantDays < 2000 {
		t.Errorf("dormancy = %d", findings[0].DormantDays)
	}
}

type fixedCones map[asn.ASN]int

func (f fixedCones) ConeSize(a asn.ASN) (int, bool) {
	n, ok := f[a]
	return n, ok
}

func TestPartialProfile(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, RegDate: d("2010-01-05"), Span: iv("2010-01-05", "2012-01-01")}, // dangling
		{ASN: 2, RegDate: d("2010-01-05"), Span: iv("2010-01-05", "2012-01-01")}, // early, before reg
		{ASN: 3, RegDate: d("2010-01-01"), Span: iv("2010-01-05", "2012-01-01")}, // early, after reg
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-02-01", "2012-06-01")},
		2: {iv("2010-01-02", "2011-01-01")},
		3: {iv("2010-01-03", "2011-01-01")},
	})
	j := joint(admin, act, 30)
	p := j.Partial(fixedCones{1: 0})
	if p.AdminLives != 3 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Dangling != 1 || p.DanglingNoCustomers != 1 || p.DanglingWithCone != 1 {
		t.Errorf("dangling stats = %+v", p)
	}
	if len(p.DanglingDays) != 1 || p.DanglingDays[0] != d("2012-06-01").Sub(d("2012-01-01")) {
		t.Errorf("dangling days = %v", p.DanglingDays)
	}
	if p.EarlyStart != 2 || p.EarlyBeforeReg != 1 {
		t.Errorf("early stats = %+v", p)
	}
}

func TestUnusedProfile(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 131073, RIR: asn.APNIC, CC: "CN", OpaqueID: "o1", Span: iv("2010-01-01", "2015-01-01")},
		{ASN: 131074, RIR: asn.APNIC, CC: "CN", OpaqueID: "o1", Span: iv("2010-01-01", "2010-01-15")}, // short 32-bit unused
		{ASN: 40001, RIR: asn.APNIC, CC: "JP", OpaqueID: "o1", Span: iv("2010-02-01", "2015-01-01")},  // 16-bit replacement
		{ASN: 40002, RIR: asn.APNIC, CC: "AU", OpaqueID: "o2", Span: iv("2010-01-01", "2015-01-01")},  // used
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		40002: {iv("2010-06-01", "2014-01-01")},
		40001: {iv("2010-06-01", "2014-01-01")},
	})
	j := joint(admin, act, 30)
	p := j.Unused()
	if p.Lives != 2 || p.ASNs != 2 || p.NeverUsedASNs != 2 {
		t.Errorf("profile = %+v", p)
	}
	if p.CountryUnused["CN"] != 2 || p.CountryTotal["CN"] != 2 {
		t.Errorf("country stats = %v / %v", p.CountryUnused, p.CountryTotal)
	}
	if p.ShortUnusedTotal[asn.APNIC] != 1 || p.ShortUnused32[asn.APNIC] != 1 {
		t.Errorf("short unused = %v / %v", p.ShortUnusedTotal, p.ShortUnused32)
	}
	// 131074 ended 2010-01-15; org o1 received 16-bit 40001 on 2010-02-01
	// — within 30 days: the failed-32-bit signature.
	if p.Replaced16 != 1 {
		t.Errorf("Replaced16 = %d, want 1", p.Replaced16)
	}
	if p.SiblingUnused != 2 {
		t.Errorf("SiblingUnused = %d, want 2", p.SiblingUnused)
	}
	top := p.TopUnusedCountries(5)
	if len(top) == 0 || top[0].CC != "CN" || top[0].UnusedFraction != 1.0 {
		t.Errorf("top countries = %+v", top)
	}
}

func TestOutsideClassification(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 32026, Span: iv("2005-01-01", "2020-01-01")},
		{ASN: 41933, Span: iv("2005-01-01", "2020-01-01")},
		{ASN: 500, Span: iv("2005-01-01", "2010-01-01")}, // deallocated 2010
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		32026: {iv("2005-02-01", "2019-01-01")},
		41933: {iv("2005-02-01", "2019-01-01")},
		// Failed prepend: 3202632026 with first hop 32026.
		3202632026: {iv("2015-01-01", "2015-01-10")},
		// Mistyped origin: 41833 one digit from 41933.
		41833: {iv("2016-01-01", "2016-05-01")},
		// Large leak: longer than any allocated number.
		290012147: {iv("2015-01-01", "2017-01-01")},
		// Post-dealloc hijack: 500 soon after dealloc, never active before.
		500: {iv("2010-01-20", "2010-02-05")},
		// Bogon: excluded.
		64512: {iv("2015-01-01", "2015-01-05")},
	})
	// Upstream adjacencies.
	act.ASNs[3202632026].Upstreams = map[asn.ASN]int64{32026: 10}
	act.ASNs[41833].Upstreams = map[asn.ASN]int64{3356: 5}
	act.ASNs[41933].Upstreams = map[asn.ASN]int64{3356: 500}

	j := joint(admin, act, 30)
	p := j.Outside()

	if p.PrependCases != 1 {
		t.Errorf("PrependCases = %d", p.PrependCases)
	}
	if p.MOASCases != 1 {
		t.Errorf("MOASCases = %d", p.MOASCases)
	}
	if p.LargeLeaks != 1 {
		t.Errorf("LargeLeaks = %d", p.LargeLeaks)
	}
	if p.HijackEvents != 1 {
		t.Errorf("HijackEvents = %d", p.HijackEvents)
	}
	if p.ASNsPostDealloc != 1 || p.ASNsNeverAllocated != 3 {
		t.Errorf("sub-category ASNs = %d / %d", p.ASNsPostDealloc, p.ASNsNeverAllocated)
	}
	if p.BogonASNsExcluded != 1 {
		t.Errorf("bogons = %d", p.BogonASNsExcluded)
	}
	for _, f := range p.Findings {
		switch f.ASN {
		case 3202632026:
			if f.Kind != OutFatFingerPrepend || f.Victim != 32026 {
				t.Errorf("prepend finding = %+v", f)
			}
		case 41833:
			if f.Kind != OutFatFingerMOAS || f.Victim != 41933 {
				t.Errorf("moas finding = %+v", f)
			}
		case 290012147:
			if f.Kind != OutLargeLeak {
				t.Errorf("leak finding = %+v", f)
			}
		case 500:
			if !f.Hijack || f.DaysSinceDealloc != 19 {
				t.Errorf("hijack finding = %+v", f)
			}
		}
	}
	if p.NeverAllocOver1Day != 3 || p.NeverAllocOver1Mon != 2 || p.NeverAllocOver1Year != 1 {
		t.Errorf("durations: >1d=%d >1m=%d >1y=%d",
			p.NeverAllocOver1Day, p.NeverAllocOver1Mon, p.NeverAllocOver1Year)
	}
}

func TestOverlapProfile(t *testing.T) {
	admin := []AdminLifetime{
		// Closed life: activity ends 100 days before dealloc.
		{ASN: 1, RIR: asn.APNIC, Span: iv("2010-01-01", "2012-01-01")},
		// Two op lives, spaced > 365 days.
		{ASN: 2, RIR: asn.ARIN, Span: iv("2008-01-01", "2016-01-01"), Open: true},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-02-01", "2011-09-23")},
		2: {iv("2008-02-01", "2009-01-01"), iv("2011-01-01", "2015-01-01")},
	})
	j := joint(admin, act, 30)
	p := j.Overlap(d("2021-03-01"))
	if p.OneLife != 1 || p.TwoLives != 1 {
		t.Errorf("profile = %+v", p)
	}
	if len(p.DeallocLagDays[asn.APNIC]) != 1 || p.DeallocLagDays[asn.APNIC][0] != 100 {
		t.Errorf("dealloc lag = %v", p.DeallocLagDays[asn.APNIC])
	}
	if p.LargelySpaced != 1 || p.MultiLife != 1 {
		t.Errorf("spacing stats = %+v", p)
	}
	if len(p.StartDelayDays[asn.APNIC]) != 1 || p.StartDelayDays[asn.APNIC][0] != 31 {
		t.Errorf("start delay = %v", p.StartDelayDays[asn.APNIC])
	}
}

func TestPrefixSeries(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-10")},
	})
	act.ASNs[1].PrefixRuns = []bgpscan.PrefixRun{
		{From: d("2010-01-01"), To: d("2010-01-05"), Count: 2},
		{From: d("2010-01-06"), To: d("2010-01-10"), Count: 60},
	}
	admin := []AdminLifetime{{ASN: 1, Span: iv("2009-01-01", "2011-01-01")}}
	j := joint(admin, act, 30)
	series := j.PrefixSeries(1, d("2010-01-04"), d("2010-01-07"))
	want := []int{2, 2, 60, 60}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
	if j.peakPrefixes(1, iv("2010-01-06", "2010-01-10")) != 60 {
		t.Error("peak wrong")
	}
}

func TestCoordinatedGroups(t *testing.T) {
	findings := []SquatFinding{
		{ASN: 1, Upstreams: []asn.ASN{666}},
		{ASN: 2, Upstreams: []asn.ASN{666}},
		{ASN: 3, Upstreams: []asn.ASN{666}},
		{ASN: 4, Upstreams: []asn.ASN{777}},
		{ASN: 5},
	}
	groups := CoordinatedGroups(findings, 2)
	if len(groups) != 1 || len(groups[666]) != 3 {
		t.Errorf("groups = %v", groups)
	}
}
