package core

import (
	"parallellives/internal/asn"
)

// ConeProvider supplies customer-cone sizes (the ASRank substitute used
// by the §6.2 dangling-announcement analysis). Nil is treated as "no
// data".
type ConeProvider interface {
	ConeSize(a asn.ASN) (int, bool)
}

// PartialProfile summarizes the §6.2 partial-overlap category.
type PartialProfile struct {
	// AdminLives is the number of partial-overlap administrative lives.
	AdminLives int
	// Dangling counts admin lives with an operational life continuing
	// past deallocation; DanglingDays collects how far past.
	Dangling     int
	DanglingDays []int
	// DanglingNoCustomers counts dangling ASNs with an empty customer
	// cone (the paper finds 95%).
	DanglingNoCustomers int
	DanglingWithCone    int // dangling ASNs for which cone data existed
	// EarlyStart counts admin lives whose operational life began before
	// the allocation appeared; EarlyBeforeReg counts the subset starting
	// even before the registration date. Lead days collected.
	EarlyStart     int
	EarlyBeforeReg int
	EarlyLeadDays  []int
}

// Partial profiles the partial-overlap category (§6.2).
func (j *Joint) Partial(cones ConeProvider) PartialProfile {
	var p PartialProfile
	for ai, cat := range j.AdminCat {
		if cat != CatPartial {
			continue
		}
		p.AdminLives++
		al := &j.Admin.Lifetimes[ai]
		dangling := false
		early := false
		for _, oi := range j.OverlapOps[ai] {
			ol := &j.Ops.Lifetimes[oi]
			if ol.Span.End > al.Span.End {
				dangling = true
				p.DanglingDays = append(p.DanglingDays, ol.Span.End.Sub(al.Span.End))
			}
			if ol.Span.Start < al.Span.Start {
				early = true
				p.EarlyLeadDays = append(p.EarlyLeadDays, al.Span.Start.Sub(ol.Span.Start))
				if ol.Span.Start < al.RegDate {
					p.EarlyBeforeReg++
				}
			}
		}
		if dangling {
			p.Dangling++
			if cones != nil {
				if cone, ok := cones.ConeSize(al.ASN); ok {
					p.DanglingWithCone++
					if cone == 0 {
						p.DanglingNoCustomers++
					}
				}
			}
		}
		if early {
			p.EarlyStart++
		}
	}
	return p
}
