package core

import (
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// This file implements the extensions the paper sketches in §8/§9 beyond
// the headline methodology: prefix-aware operational lifetimes and the
// origination/transit role split.

// BuildOpLifetimesPrefixAware segments activity like BuildOpLifetimes but
// additionally starts a new operational life across a bridged gap when
// the originated prefix set changed over the gap — the §8 refinement:
// "using prefixes, we could consider both the inactivity period and the
// prefixes announced by the ASN to decide whether to start a new
// operational lifespan." Gaps shorter than minGapDays never split, so
// transient flaps with routine prefix churn are not over-segmented;
// pure-transit spans (no originations on either side) fall back to the
// timeout rule.
func BuildOpLifetimesPrefixAware(act *bgpscan.Activity, timeout, minGapDays int) *OpIndex {
	idx := &OpIndex{
		Timeout:  timeout,
		Activity: act,
		byASN:    make(map[asn.ASN][]int, len(act.ASNs)),
	}
	asns := make([]asn.ASN, 0, len(act.ASNs))
	for a := range act.ASNs {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		aa := act.ASNs[a]
		segs := aa.Days.SplitByTimeout(timeout)
		segs = splitOnPrefixTurnover(aa, segs, minGapDays)
		for _, seg := range segs {
			idx.byASN[a] = append(idx.byASN[a], len(idx.Lifetimes))
			idx.Lifetimes = append(idx.Lifetimes, OpLifetime{ASN: a, Span: seg})
		}
	}
	return idx
}

// splitOnPrefixTurnover re-splits each timeout-bridged lifetime at the
// interior activity gaps of at least minGapDays across which the
// origination signature changed (with originations on both sides).
func splitOnPrefixTurnover(aa *bgpscan.ASNActivity, segs []intervals.Interval, minGapDays int) []intervals.Interval {
	if len(aa.PrefixRuns) < 2 {
		return segs
	}
	var out []intervals.Interval
	for _, seg := range segs {
		cur := seg
		for _, gap := range aa.Days.Gaps() {
			if gap.Start <= cur.Start || gap.End >= cur.End || gap.Days() < minGapDays {
				continue
			}
			before := originSigOn(aa, gap.Start.AddDays(-1))
			after := originSigOn(aa, gap.End.AddDays(1))
			if before != 0 && after != 0 && before != after {
				out = append(out, intervals.New(cur.Start, gap.Start.AddDays(-1)))
				cur = intervals.New(gap.End.AddDays(1), cur.End)
			}
		}
		out = append(out, cur)
	}
	return out
}

// originSigOn returns the origination signature on day d, or 0 when the
// ASN originated nothing that day.
func originSigOn(aa *bgpscan.ASNActivity, d dates.Day) uint64 {
	i := sort.Search(len(aa.PrefixRuns), func(i int) bool { return aa.PrefixRuns[i].To >= d })
	if i < len(aa.PrefixRuns) && aa.PrefixRuns[i].From <= d {
		return aa.PrefixRuns[i].Sig
	}
	return 0
}

// RoleProfile is the §9 origination/transit breakdown of operational
// lifetimes.
type RoleProfile struct {
	// OriginOnly lifetimes originated prefixes on every visible day;
	// TransitOnly never originated; Mixed did both.
	OriginOnly, TransitOnly, Mixed int
	// TransitDaysShare is the overall fraction of visible ASN-days with
	// no origination.
	TransitDaysShare float64
}

// Roles classifies every operational lifetime by origination behaviour.
func (idx *OpIndex) Roles() RoleProfile {
	var p RoleProfile
	var visibleDays, transitDays int64
	for _, ol := range idx.Lifetimes {
		aa := idx.Activity.ASNs[ol.ASN]
		if aa == nil {
			continue
		}
		lifeDays := aa.Days.Intersect(intervals.Set{ol.Span})
		origin := aa.OriginDays.Intersect(intervals.Set{ol.Span})
		ld, od := lifeDays.TotalDays(), origin.TotalDays()
		visibleDays += int64(ld)
		transitDays += int64(ld - od)
		switch {
		case od == 0:
			p.TransitOnly++
		case od == ld:
			p.OriginOnly++
		default:
			p.Mixed++
		}
	}
	if visibleDays > 0 {
		p.TransitDaysShare = float64(transitDays) / float64(visibleDays)
	}
	return p
}
