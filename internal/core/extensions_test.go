package core

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/intervals"
)

func TestPrefixAwareSplitsOnTurnover(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		// One activity stream with a 10-day interior gap; the prefix
		// signature changes across it.
		1: {iv("2010-01-01", "2010-02-01"), iv("2010-02-12", "2010-04-01")},
	})
	act.ASNs[1].PrefixRuns = []bgpscan.PrefixRun{
		{From: d("2010-01-01"), To: d("2010-02-01"), Count: 2, Sig: 111},
		{From: d("2010-02-12"), To: d("2010-04-01"), Count: 2, Sig: 222},
	}
	// Timeout-only: the 10-day gap is bridged — one lifetime.
	plain := BuildOpLifetimes(act, 30)
	if len(plain.Lifetimes) != 1 {
		t.Fatalf("plain lifetimes = %v", plain.Lifetimes)
	}
	// Prefix-aware: the signature turnover splits it.
	aware := BuildOpLifetimesPrefixAware(act, 30, 5)
	if len(aware.Lifetimes) != 2 {
		t.Fatalf("aware lifetimes = %v", aware.Lifetimes)
	}
	if aware.Lifetimes[0].Span != iv("2010-01-01", "2010-02-01") ||
		aware.Lifetimes[1].Span != iv("2010-02-12", "2010-04-01") {
		t.Errorf("spans = %v", aware.Lifetimes)
	}
}

func TestPrefixAwareKeepsStablePrefixes(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-02-01"), iv("2010-02-12", "2010-04-01")},
	})
	act.ASNs[1].PrefixRuns = []bgpscan.PrefixRun{
		{From: d("2010-01-01"), To: d("2010-02-01"), Count: 2, Sig: 111},
		{From: d("2010-02-12"), To: d("2010-04-01"), Count: 2, Sig: 111},
	}
	aware := BuildOpLifetimesPrefixAware(act, 30, 5)
	if len(aware.Lifetimes) != 1 {
		t.Fatalf("stable prefixes must not split: %v", aware.Lifetimes)
	}
}

func TestPrefixAwareIgnoresShortGapsAndTransit(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		// 2-day gap with a signature change: below minGapDays, no split.
		1: {iv("2010-01-01", "2010-02-01"), iv("2010-02-04", "2010-04-01")},
		// Pure transit (no prefix runs): timeout rule only.
		2: {iv("2010-01-01", "2010-02-01"), iv("2010-02-12", "2010-04-01")},
	})
	act.ASNs[1].PrefixRuns = []bgpscan.PrefixRun{
		{From: d("2010-01-01"), To: d("2010-02-01"), Count: 1, Sig: 111},
		{From: d("2010-02-04"), To: d("2010-04-01"), Count: 1, Sig: 222},
	}
	aware := BuildOpLifetimesPrefixAware(act, 30, 5)
	if n := len(aware.Of(1)); n != 1 {
		t.Errorf("short gap split anyway: %d lifetimes", n)
	}
	if n := len(aware.Of(2)); n != 1 {
		t.Errorf("transit ASN split: %d lifetimes", n)
	}
}

func TestRoles(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-10")}, // origin every day
		2: {iv("2010-01-01", "2010-01-10")}, // transit only
		3: {iv("2010-01-01", "2010-01-10")}, // mixed
	})
	act.ASNs[1].OriginDays = intervals.Set{iv("2010-01-01", "2010-01-10")}
	act.ASNs[3].OriginDays = intervals.Set{iv("2010-01-01", "2010-01-05")}
	ops := BuildOpLifetimes(act, 30)
	p := ops.Roles()
	if p.OriginOnly != 1 || p.TransitOnly != 1 || p.Mixed != 1 {
		t.Fatalf("profile = %+v", p)
	}
	// 30 visible days, 15 of them transit-only (10 from ASN2, 5 from ASN3).
	if p.TransitDaysShare != 0.5 {
		t.Errorf("TransitDaysShare = %v", p.TransitDaysShare)
	}
}
