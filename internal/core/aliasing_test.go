package core

import (
	"context"
	"encoding/json"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/delegation"
	"parallellives/internal/intervals"
	"parallellives/internal/restore"
)

// TestRunScratchDoesNotAliasLifetimes pins the admin-builder scratch
// contract: lifetimes appended by appendLifetimes must be independent of
// the runScratch the partition loop recycles group over group.
func TestRunScratchDoesNotAliasLifetimes(t *testing.T) {
	asns := []asn.ASN{64500, 64501, 64502}
	var sc runScratch
	var stats AdminStats
	var out []AdminLifetime
	for i, a := range asns {
		reg := d("2010-01-01").AddDays(i * 100)
		group := []restore.Run{
			run(a, asn.ARIN, delegation.StatusAllocated, "2010-01-01", intervals.New(reg, reg.AddDays(400)), false),
			run(a, asn.ARIN, delegation.StatusReserved, "2010-01-01", intervals.New(reg.AddDays(401), reg.AddDays(450)), false),
			run(a, asn.ARIN, delegation.StatusAllocated, "2010-01-01", intervals.New(reg.AddDays(451), reg.AddDays(900)), true),
		}
		out = appendLifetimes(out, group, &stats, &sc)
	}

	before, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, all := 0, sc.delegated[:cap(sc.delegated)]; i < len(all); i++ {
		all[i] = restore.Run{}
	}
	for i, all := 0, sc.reserved[:cap(sc.reserved)]; i < len(all); i++ {
		all[i] = restore.Run{}
	}
	after, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("admin lifetimes changed after scribbling the partition scratch")
	}
}

// TestActivityColumnsReuseDoesNotAliasIndex pins the columnar-view
// contract: an OpIndex built from an ActivityColumns must stay intact
// when the same columns are reused for further timeouts, and must not
// alias the columnar day arrays.
func TestActivityColumnsReuseDoesNotAliasIndex(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		64500: {iv("2010-01-01", "2010-03-01"), iv("2010-06-01", "2010-08-01")},
		64501: {iv("2011-01-01", "2011-01-05")},
		64502: {iv("2012-01-01", "2012-02-01"), iv("2012-05-01", "2012-05-02"), iv("2013-01-01", "2013-06-01")},
	})
	cols := NewActivityColumns(act)
	idx, err := cols.BuildOpLifetimes(context.Background(), 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := json.Marshal(idx.Lifetimes)
	if err != nil {
		t.Fatal(err)
	}

	// Reuse the columns for other timeouts, then scribble the day arrays.
	for _, to := range []int{0, 5, 10000} {
		if _, err := cols.BuildOpLifetimes(context.Background(), to, 3); err != nil {
			t.Fatal(err)
		}
		cols.GapDistribution()
	}
	for i := range cols.cols.Start {
		cols.cols.Start[i] = 0
		cols.cols.End[i] = 0
	}

	after, err := json.Marshal(idx.Lifetimes)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("op lifetimes changed after columns were reused and scribbled")
	}
	// The shared-index byASN subslices must still resolve correctly.
	for a := asn.ASN(64500); a <= 64502; a++ {
		for _, li := range idx.Of(a) {
			if idx.Lifetimes[li].ASN != a {
				t.Fatalf("index of %v points at lifetime of %v", a, idx.Lifetimes[li].ASN)
			}
		}
	}
}
