package core

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/intervals"
)

func TestAliveSeriesBruteForce(t *testing.T) {
	admin := []AdminLifetime{
		{ASN: 1, RIR: asn.ARIN, Span: iv("2010-01-01", "2010-01-10")},
		{ASN: 2, RIR: asn.RIPENCC, Span: iv("2010-01-05", "2010-01-20")},
		{ASN: 3, RIR: asn.ARIN, Span: iv("2010-01-15", "2010-01-25")},
	}
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-02", "2010-01-08")},
		2: {iv("2010-01-06", "2010-01-18")},
		9: {iv("2010-01-03", "2010-01-04")}, // never allocated: overall only
	})
	j := joint(admin, act, 30)
	s := j.Alive(d("2010-01-01"), d("2010-01-20"))

	idx := func(ds string) int { return d(ds).Sub(d("2010-01-01")) }

	if got := s.AdminOverall[idx("2010-01-01")]; got != 1 {
		t.Errorf("admin day1 = %d", got)
	}
	if got := s.AdminOverall[idx("2010-01-07")]; got != 2 {
		t.Errorf("admin day7 = %d", got)
	}
	if got := s.AdminOverall[idx("2010-01-16")]; got != 2 { // ASN2 + ASN3
		t.Errorf("admin day16 = %d", got)
	}
	if got := s.AdminPerRIR[asn.ARIN][idx("2010-01-16")]; got != 1 {
		t.Errorf("ARIN day16 = %d", got)
	}
	// Op: day 3 has ASN1 (ARIN-covered) and ASN9 (no admin life).
	if got := s.OpOverall[idx("2010-01-03")]; got != 2 {
		t.Errorf("op overall day3 = %d", got)
	}
	if got := s.OpPerRIR[asn.ARIN][idx("2010-01-03")]; got != 1 {
		t.Errorf("op ARIN day3 = %d", got)
	}
	if got := s.OpPerRIR[asn.RIPENCC][idx("2010-01-10")]; got != 1 {
		t.Errorf("op RIPE day10 = %d", got)
	}
	// ASN9's days never reach any per-RIR series.
	sum := 0
	for _, r := range asn.All() {
		sum += s.OpPerRIR[r][idx("2010-01-04")]
	}
	if sum != 1 { // only ASN1
		t.Errorf("per-RIR op day4 sum = %d", sum)
	}
}

func TestGapDistributionAndSweep(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-10"), iv("2010-01-16", "2010-01-20"),
			iv("2010-03-01", "2010-03-10")}, // gaps of 5 and 39 days
		2: {iv("2010-01-01", "2010-01-05"), iv("2010-01-11", "2010-01-15")}, // gap of 5
	})
	gaps := GapDistribution(act)
	if len(gaps) != 3 || gaps[0] != 5 || gaps[1] != 5 || gaps[2] != 39 {
		t.Fatalf("gaps = %v", gaps)
	}
	admin := []AdminLifetime{
		{ASN: 1, Span: iv("2009-01-01", "2011-01-01")},
		{ASN: 2, Span: iv("2009-01-01", "2011-01-01")},
	}
	sweep := SweepTimeouts(act, NewAdminIndex(admin), []int{4, 5, 39, 40})
	// timeout 4: no gap bridged.
	if sweep[0].GapFractionBelow != 0 || sweep[0].OpLifetimes != 5 {
		t.Errorf("sweep[4] = %+v", sweep[0])
	}
	// timeout 5: the two 5-day gaps bridge.
	if sweep[1].GapFractionBelow < 0.66 || sweep[1].OpLifetimes != 3 {
		t.Errorf("sweep[5] = %+v", sweep[1])
	}
	// timeout 39: everything bridges.
	if sweep[2].OpLifetimes != 2 || sweep[2].GapFractionBelow != 1 {
		t.Errorf("sweep[39] = %+v", sweep[2])
	}
	// AdminWithOneOrLessOpLives: at timeout 4, ASN1 has 3 contained op
	// lives (fails), ASN2 has 2 (fails) -> 0; at 39 both have 1 -> 1.
	if sweep[0].AdminWithOneOrLessOpLives != 0 {
		t.Errorf("one-or-less at 4 = %v", sweep[0].AdminWithOneOrLessOpLives)
	}
	if sweep[2].AdminWithOneOrLessOpLives != 1 {
		t.Errorf("one-or-less at 39 = %v", sweep[2].AdminWithOneOrLessOpLives)
	}
}

func TestOpIndexAccessors(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-10"), iv("2010-03-01", "2010-03-10")},
		2: {iv("2010-01-01", "2010-01-10")},
	})
	ops := BuildOpLifetimes(act, 30)
	if ops.ASNs() != 2 {
		t.Errorf("ASNs = %d", ops.ASNs())
	}
	spans := ops.SpansOf(1)
	if len(spans) != 2 || spans[0] != iv("2010-01-01", "2010-01-10") {
		t.Errorf("SpansOf = %v", spans)
	}
	if len(ops.SpansOf(99)) != 0 {
		t.Error("unknown ASN should have no spans")
	}
}

func TestUpstreamsOfOrdering(t *testing.T) {
	act := buildActivity(map[asn.ASN][]intervals.Interval{
		1: {iv("2010-01-01", "2010-01-10")},
	})
	act.ASNs[1].Upstreams = map[asn.ASN]int64{7: 3, 8: 10, 9: 3}
	admin := []AdminLifetime{{ASN: 1, Span: iv("2009-01-01", "2011-01-01")}}
	j := joint(admin, act, 30)
	ups := j.upstreamsOf(1)
	if len(ups) != 3 || ups[0] != 8 || ups[1] != 7 || ups[2] != 9 {
		t.Errorf("upstreams = %v (want frequency then ASN order)", ups)
	}
	if j.upstreamsOf(42) != nil {
		t.Error("unknown ASN should have no upstreams")
	}
}

func TestEnumStrings(t *testing.T) {
	if CatComplete.String() != "complete overlap" || CatOutside.String() != "outside delegation" {
		t.Error("Category strings wrong")
	}
	if Category(99).String() != "unknown" {
		t.Error("out-of-range category")
	}
	if OutLargeLeak.String() != "large internal leak" || OutsideKind(99).String() != "unknown" {
		t.Error("OutsideKind strings wrong")
	}
}
