package core

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/intervals"
	"parallellives/internal/restore"
)

func d(s string) dates.Day { return dates.MustParse(s) }

func iv(a, b string) intervals.Interval { return intervals.New(d(a), d(b)) }

func run(a asn.ASN, rir asn.RIR, status delegation.Status, reg string, span intervals.Interval, open bool) restore.Run {
	return restore.Run{
		ASN: a, RIR: rir, Status: status, RegDate: d(reg), FirstRegDate: d(reg),
		Span: span, OpenAtEnd: open,
	}
}

func alloc(a asn.ASN, rir asn.RIR, reg string, span intervals.Interval) restore.Run {
	return run(a, rir, delegation.StatusAllocated, reg, span, false)
}

func build(t *testing.T, runs ...restore.Run) ([]AdminLifetime, AdminStats) {
	t.Helper()
	res := &restore.Result{Runs: runs}
	return BuildAdminLifetimes(res)
}

func TestSingleRunSingleLifetime(t *testing.T) {
	lt, stats := build(t, alloc(64500, asn.RIPENCC, "2010-01-01", iv("2010-01-01", "2015-06-30")))
	if len(lt) != 1 {
		t.Fatalf("lifetimes = %d", len(lt))
	}
	if lt[0].Span != iv("2010-01-01", "2015-06-30") || lt[0].RegDate != d("2010-01-01") {
		t.Errorf("lifetime = %+v", lt[0])
	}
	if stats.ASNs != 1 || stats.Lifetimes != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSameRegDateMergesAcrossReservedGap(t *testing.T) {
	// §4.1: reappearing with the same registration date means the ASN
	// went back to the previous owner — one lifetime.
	lt, stats := build(t,
		alloc(64500, asn.ARIN, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		run(64500, asn.ARIN, delegation.StatusReserved, "2010-01-01", iv("2012-01-02", "2012-03-01"), false),
		alloc(64500, asn.ARIN, "2010-01-01", iv("2012-03-02", "2015-01-01")),
	)
	if len(lt) != 1 {
		t.Fatalf("lifetimes = %d, want 1 (merged)", len(lt))
	}
	if lt[0].Span != iv("2010-01-01", "2015-01-01") {
		t.Errorf("merged span = %v", lt[0].Span)
	}
	if stats.MergedSameRegDate != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestNewRegDateSplitsIntoTwoLifetimes(t *testing.T) {
	lt, stats := build(t,
		alloc(64500, asn.ARIN, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		alloc(64500, asn.ARIN, "2013-05-05", iv("2013-05-05", "2015-01-01")),
	)
	if len(lt) != 2 {
		t.Fatalf("lifetimes = %d, want 2 (reallocation)", len(lt))
	}
	if stats.SplitNewRegDate != 1 || stats.ReallocatedASNs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAfriNICExceptionMergesDespiteNewDate(t *testing.T) {
	// AfriNIC: reserved for the whole gap then allocated again (never
	// available) merges even under a new registration date.
	lt, stats := build(t,
		alloc(37000, asn.AfriNIC, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		run(37000, asn.AfriNIC, delegation.StatusReserved, "2010-01-01", iv("2012-01-02", "2012-06-30"), false),
		alloc(37000, asn.AfriNIC, "2012-07-01", iv("2012-07-01", "2015-01-01")),
	)
	if len(lt) != 1 {
		t.Fatalf("lifetimes = %d, want 1 (AfriNIC exception)", len(lt))
	}
	if stats.MergedAfriNIC != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAfriNICGapNotFullyReservedSplits(t *testing.T) {
	// The gap includes days outside reserved status (i.e. available):
	// the exception does not apply.
	lt, _ := build(t,
		alloc(37000, asn.AfriNIC, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		run(37000, asn.AfriNIC, delegation.StatusReserved, "2010-01-01", iv("2012-01-02", "2012-03-01"), false),
		alloc(37000, asn.AfriNIC, "2012-07-01", iv("2012-07-01", "2015-01-01")),
	)
	if len(lt) != 2 {
		t.Fatalf("lifetimes = %d, want 2", len(lt))
	}
}

func TestNonAfriNICReservedGapWithNewDateSplits(t *testing.T) {
	lt, _ := build(t,
		alloc(64500, asn.APNIC, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		run(64500, asn.APNIC, delegation.StatusReserved, "2010-01-01", iv("2012-01-02", "2012-06-30"), false),
		alloc(64500, asn.APNIC, "2012-07-01", iv("2012-07-01", "2015-01-01")),
	)
	if len(lt) != 2 {
		t.Fatalf("lifetimes = %d, want 2 (APNIC has no exception)", len(lt))
	}
}

func TestContiguousTransferMergesGappedSplits(t *testing.T) {
	// Contiguous inter-RIR transfer: one lifetime.
	lt, stats := build(t,
		alloc(64500, asn.ARIN, "2005-01-01", iv("2005-01-01", "2012-01-01")),
		alloc(64500, asn.RIPENCC, "2005-01-01", iv("2012-01-02", "2018-01-01")),
	)
	if len(lt) != 1 {
		t.Fatalf("contiguous transfer: lifetimes = %d, want 1", len(lt))
	}
	if !lt[0].Transferred || lt[0].RIR != asn.RIPENCC {
		t.Errorf("lifetime = %+v", lt[0])
	}
	if stats.MergedTransfers != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Gapped transfer: two lifetimes.
	lt, _ = build(t,
		alloc(64501, asn.ARIN, "2005-01-01", iv("2005-01-01", "2012-01-01")),
		alloc(64501, asn.RIPENCC, "2005-01-01", iv("2012-01-20", "2018-01-01")),
	)
	if len(lt) != 2 {
		t.Fatalf("gapped transfer: lifetimes = %d, want 2", len(lt))
	}
}

func TestAssignedTreatedAsDelegated(t *testing.T) {
	lt, _ := build(t,
		run(64500, asn.ARIN, delegation.StatusAssigned, "2010-01-01", iv("2010-01-01", "2011-01-01"), false),
		alloc(64500, asn.ARIN, "2010-01-01", iv("2011-01-02", "2012-01-01")),
	)
	if len(lt) != 1 {
		t.Fatalf("assigned+allocated same date should merge, got %d", len(lt))
	}
}

func TestOpenFlagPropagates(t *testing.T) {
	lt, stats := build(t,
		alloc(64500, asn.ARIN, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		run(64500, asn.ARIN, delegation.StatusAllocated, "2010-01-01", iv("2012-06-01", "2021-03-01"), true),
	)
	if len(lt) != 1 || !lt[0].Open {
		t.Fatalf("lifetime = %+v", lt)
	}
	if stats.OpenLifetimes != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMultipleASNsIndependent(t *testing.T) {
	lt, stats := build(t,
		alloc(100, asn.ARIN, "2010-01-01", iv("2010-01-01", "2012-01-01")),
		alloc(100, asn.ARIN, "2013-01-01", iv("2013-01-01", "2014-01-01")),
		alloc(200, asn.APNIC, "2011-01-01", iv("2011-01-01", "2012-01-01")),
	)
	if len(lt) != 3 || stats.ASNs != 2 || stats.ReallocatedASNs != 1 {
		t.Fatalf("lt=%d stats=%+v", len(lt), stats)
	}
}

func TestSiblingCounts(t *testing.T) {
	lts := []AdminLifetime{
		{ASN: 1, OpaqueID: "org-a"},
		{ASN: 2, OpaqueID: "org-a"},
		{ASN: 3, OpaqueID: "org-b"},
		{ASN: 4, OpaqueID: ""},
	}
	idx := NewAdminIndex(lts)
	sib := idx.SiblingCounts()
	if len(sib["org-a"]) != 2 || len(sib["org-b"]) != 1 {
		t.Errorf("siblings = %v", sib)
	}
	if _, ok := sib[""]; ok {
		t.Error("empty opaque id must not group")
	}
}
