// Package loadgen is an open-loop HTTP load generator for the serving
// tier. Open-loop means the arrival schedule is fixed up front: request
// i is launched at start + i/rate regardless of how many earlier
// requests are still in flight, and latency is measured from the
// *scheduled* start, not the send. A server that falls behind therefore
// shows the queueing delay in its percentiles instead of silently
// slowing the generator down (the coordinated-omission trap of
// closed-loop benchmarks).
//
// The workload is a weighted mix over the serving tier's read
// endpoints: per-ASN lookups sampled from a configurable working set
// (plus a miss fraction drawn uniformly from the whole ASN space),
// per-RIR alive series with varied strides, the taxonomy table, and
// the stage report. Results carry throughput, a latency distribution
// (p50/p90/p99/p999/max), and an error taxonomy that separates
// shed responses (503 with Retry-After — the tier protecting itself)
// from hard failures (other 5xx, transport errors, timeouts).
//
// Against a replicated router the generator also counts what the fleet
// absorbed: responses carrying the X-Parallellives-Failover header
// (a replica died mid-request and a sibling answered) and hedge wins
// (X-Parallellives-Hedge) are first-class outcome counts, so a chaos
// drill can assert "replicas failed over N times and the client saw
// zero errors" from the load report alone.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"parallellives/internal/asn"
)

// Mix weights the endpoint classes of the generated workload. Zero
// values drop the class; the weights need not sum to anything.
type Mix struct {
	ASN      int `json:"asn"`      // GET /v1/asn/{n}
	Series   int `json:"series"`   // GET /v1/rir/{r}/series[?stride=k]
	Taxonomy int `json:"taxonomy"` // GET /v1/taxonomy
	Stages   int `json:"stages"`   // GET /v1/stages
}

// DefaultMix approximates a read-heavy API consumer: mostly per-ASN
// lookups with a steady background of aggregate reads.
func DefaultMix() Mix { return Mix{ASN: 70, Series: 20, Taxonomy: 8, Stages: 2} }

func (m Mix) total() int { return m.ASN + m.Series + m.Taxonomy + m.Stages }

// Options configures one load run.
type Options struct {
	// Target is the base URL of the server under test.
	Target string
	// Rate is the scheduled arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals are scheduled for.
	Duration time.Duration
	// MaxInFlight caps concurrent client requests. Arrivals that find
	// the cap exhausted are counted as dropped (the client itself
	// overloaded) rather than silently delayed. 0 means 512.
	MaxInFlight int
	// Mix weights the endpoint classes. Zero-valued → DefaultMix.
	Mix Mix
	// ASNs is the population to sample per-ASN lookups from.
	ASNs []asn.ASN
	// WorkingSet restricts sampling to the first N ASNs of the
	// population, modelling a hot set smaller than the full snapshot.
	// 0 means the whole population.
	WorkingSet int
	// MissRatio is the fraction of per-ASN lookups aimed at uniformly
	// random ASNs across the whole 32-bit space (almost always absent).
	MissRatio float64
	// Strides are the series stride variants to rotate through.
	// Empty → {1, 7, 30}.
	Strides []int
	// Seed makes the request sequence reproducible.
	Seed int64
	// Client overrides the HTTP client (tests). nil → a pooled client
	// with MaxInFlight idle connections.
	Client *http.Client
}

// Result is one run's measurements, shaped for BENCH_serve.json.
type Result struct {
	Target    string  `json:"target"`
	RateRPS   float64 `json:"rate_rps"`
	DurationS float64 `json:"duration_s"`
	Mix       Mix     `json:"mix"`

	Scheduled int64 `json:"scheduled"`
	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"` // client in-flight cap exhausted

	// AchievedRPS counts completed requests over the true elapsed time
	// (schedule start to last response).
	AchievedRPS float64 `json:"achieved_rps"`

	// Errors is the response taxonomy: ok, not_found, bad_request,
	// not_modified, shed (503 + Retry-After), http_5xx, transport,
	// timeout.
	Errors map[string]int64 `json:"errors"`

	// Failovers totals the replica failovers the fleet absorbed on this
	// run's behalf (sum of X-Parallellives-Failover header values);
	// HedgeWins counts responses won by a hedged second request. Both
	// stay zero against an unreplicated target.
	Failovers int64 `json:"failovers"`
	HedgeWins int64 `json:"hedge_wins"`

	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`

	// HistLeMs/HistCounts are a log-bucketed latency histogram
	// (counts[i] = completions with latency ≤ le[i], exclusive of
	// earlier buckets). Fixed bounds across runs, so histograms from
	// different runs pool by element-wise count addition — that is how
	// bench_serve.sh computes a fleet-wide percentile from per-shard
	// rows without the biased max-of-p99s shortcut.
	HistLeMs   []float64 `json:"hist_le_ms"`
	HistCounts []int64   `json:"hist_counts"`
}

// histBounds: 0.05ms × 1.25^k, 60 buckets (~30s ceiling), shared by
// every run so histograms are poolable.
var histBounds = func() []float64 {
	b := make([]float64, 60)
	v := 0.05
	for i := range b {
		b[i] = v
		v *= 1.25
	}
	return b
}()

var rirTokens = []string{"afrinic", "apnic", "arin", "lacnic", "ripencc", "all"}

// Run executes one open-loop load run. It returns early (with partial
// results) if ctx is cancelled.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}
	if opts.Rate <= 0 || opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: rate and duration must be positive")
	}
	mix := opts.Mix
	if mix.total() == 0 {
		mix = DefaultMix()
	}
	if mix.ASN > 0 && len(opts.ASNs) == 0 && opts.MissRatio < 1 {
		return nil, fmt.Errorf("loadgen: ASN traffic in the mix but no population to sample")
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 512
	}
	strides := opts.Strides
	if len(strides) == 0 {
		strides = []int{1, 7, 30}
	}
	working := len(opts.ASNs)
	if opts.WorkingSet > 0 && opts.WorkingSet < working {
		working = opts.WorkingSet
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        maxInFlight,
			MaxIdleConnsPerHost: maxInFlight,
		}}
	}

	total := int64(opts.Rate * opts.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / opts.Rate)

	rng := rand.New(rand.NewSource(opts.Seed))
	paths := make([]string, total)
	for i := range paths {
		paths[i] = pickPath(rng, mix, opts, working, strides)
	}

	res := &Result{
		Target:    opts.Target,
		RateRPS:   opts.Rate,
		DurationS: opts.Duration.Seconds(),
		Mix:       mix,
		Scheduled: total,
		Errors:    map[string]int64{},
	}
	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, total)
		wg        sync.WaitGroup
		sem       = make(chan struct{}, maxInFlight)
	)
	record := func(o outcome, d time.Duration) {
		mu.Lock()
		res.Errors[o.class]++
		res.Completed++
		res.Failovers += o.failovers
		if o.hedgeWin {
			res.HedgeWins++
		}
		latencies = append(latencies, d)
		mu.Unlock()
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
schedule:
	for i := int64(0); i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break schedule
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break schedule
		}
		select {
		case sem <- struct{}{}:
		default:
			res.Dropped++ // open loop: the slot passes, the client is saturated
			continue
		}
		wg.Add(1)
		go func(path string, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			record(fire(ctx, client, opts.Target, path), time.Since(scheduled))
		}(paths[i], due)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if res.Completed > 0 {
		res.AchievedRPS = float64(res.Completed) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if n := len(latencies); n > 0 {
		pct := func(q float64) time.Duration {
			i := int(q*float64(n)+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= n {
				i = n - 1
			}
			return latencies[i]
		}
		res.P50Ms = ms(pct(0.50))
		res.P90Ms = ms(pct(0.90))
		res.P99Ms = ms(pct(0.99))
		res.P999Ms = ms(pct(0.999))
		res.MaxMs = ms(latencies[n-1])
	}
	res.HistLeMs = histBounds
	res.HistCounts = make([]int64, len(histBounds))
	for _, d := range latencies {
		i := sort.SearchFloat64s(histBounds, ms(d))
		if i >= len(histBounds) {
			i = len(histBounds) - 1
		}
		res.HistCounts[i]++
	}
	return res, nil
}

// pickPath draws one request from the mix.
func pickPath(rng *rand.Rand, mix Mix, opts Options, working int, strides []int) string {
	n := rng.Intn(mix.total())
	switch {
	case n < mix.ASN:
		if rng.Float64() < opts.MissRatio || working == 0 {
			return fmt.Sprintf("/v1/asn/%d", rng.Uint32())
		}
		return fmt.Sprintf("/v1/asn/%d", opts.ASNs[rng.Intn(working)])
	case n < mix.ASN+mix.Series:
		rir := rirTokens[rng.Intn(len(rirTokens))]
		stride := strides[rng.Intn(len(strides))]
		if stride <= 1 {
			return "/v1/rir/" + rir + "/series"
		}
		return fmt.Sprintf("/v1/rir/%s/series?stride=%d", rir, stride)
	case n < mix.ASN+mix.Series+mix.Taxonomy:
		return "/v1/taxonomy"
	default:
		return "/v1/stages"
	}
}

// Replica-fleet response markers, mirroring router.FailoverHeader and
// router.HedgeHeader (pinned equal by a test so they cannot drift).
const (
	failoverHeader = "X-Parallellives-Failover"
	hedgeHeader    = "X-Parallellives-Hedge"
)

// outcome is one request's classification plus what the fleet went
// through to produce it.
type outcome struct {
	class     string
	failovers int64
	hedgeWin  bool
}

// fire sends one request and classifies the outcome.
func fire(ctx context.Context, client *http.Client, target, path string) outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+path, nil)
	if err != nil {
		return outcome{class: "transport"}
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{class: "timeout"}
		}
		return outcome{class: "transport"}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var o outcome
	if v := resp.Header.Get(failoverHeader); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			o.failovers = n
		}
	}
	o.hedgeWin = resp.Header.Get(hedgeHeader) == "win"
	switch {
	case resp.StatusCode == http.StatusNotModified:
		o.class = "not_modified"
	case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		o.class = "shed"
	case resp.StatusCode >= 500:
		o.class = "http_5xx"
	case resp.StatusCode == http.StatusNotFound:
		o.class = "not_found"
	case resp.StatusCode >= 400:
		o.class = "bad_request"
	default:
		o.class = "ok"
	}
	return o
}
