package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/router"
)

// stubServer answers the serving tier's read surface well enough to
// classify: known ASNs 200, others 404, aggregates 200, and an
// optional shed mode (503 + Retry-After).
func stubServer(shed *atomic.Bool, delay time.Duration) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			time.Sleep(delay)
		}
		if shed != nil && shed.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/asn/"):
			if strings.HasSuffix(r.URL.Path, "/10") || strings.HasSuffix(r.URL.Path, "/20") {
				w.Write([]byte(`{"asn":10}`))
				return
			}
			http.Error(w, `{"error":"no"}`, http.StatusNotFound)
		default:
			w.Write([]byte(`{}`))
		}
	}))
}

func TestRunMixedWorkload(t *testing.T) {
	ts := stubServer(nil, 0)
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:   ts.URL,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		ASNs:     []asn.ASN{10, 20},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 200 {
		t.Fatalf("scheduled %d, want 200", res.Scheduled)
	}
	if res.Completed+res.Dropped != res.Scheduled {
		t.Fatalf("completed %d + dropped %d != scheduled %d", res.Completed, res.Dropped, res.Scheduled)
	}
	var classified int64
	for _, n := range res.Errors {
		classified += n
	}
	if classified != res.Completed {
		t.Fatalf("taxonomy sums to %d, completed %d", classified, res.Completed)
	}
	if res.Errors["ok"] == 0 {
		t.Fatalf("no successes in %+v", res.Errors)
	}
	if res.AchievedRPS <= 0 || res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P999Ms {
		t.Fatalf("implausible stats: rps=%v p50=%v p99=%v p999=%v max=%v",
			res.AchievedRPS, res.P50Ms, res.P99Ms, res.P999Ms, res.MaxMs)
	}
	if len(res.HistLeMs) != len(res.HistCounts) || len(res.HistLeMs) == 0 {
		t.Fatalf("histogram shape: %d bounds, %d counts", len(res.HistLeMs), len(res.HistCounts))
	}
	var histTotal int64
	for _, c := range res.HistCounts {
		histTotal += c
	}
	if histTotal != res.Completed {
		t.Fatalf("histogram holds %d samples, completed %d", histTotal, res.Completed)
	}
}

func TestRunMissTraffic(t *testing.T) {
	ts := stubServer(nil, 0)
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:    ts.URL,
		Rate:      200,
		Duration:  250 * time.Millisecond,
		Mix:       Mix{ASN: 1},
		ASNs:      []asn.ASN{10},
		MissRatio: 1, // everything uniform-random → almost surely 404
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors["not_found"] == 0 {
		t.Fatalf("uniform-random ASN traffic produced no 404s: %+v", res.Errors)
	}
}

func TestRunClassifiesSheds(t *testing.T) {
	var shed atomic.Bool
	shed.Store(true)
	ts := stubServer(&shed, 0)
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:   ts.URL,
		Rate:     200,
		Duration: 250 * time.Millisecond,
		Mix:      Mix{Taxonomy: 1},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors["shed"] != res.Completed || res.Completed == 0 {
		t.Fatalf("want every completion classified shed, got %+v of %d", res.Errors, res.Completed)
	}
}

// TestRunOpenLoopDrops proves the open-loop property: a slow server
// with a tiny client cap drops arrivals instead of stretching the
// schedule.
func TestRunOpenLoopDrops(t *testing.T) {
	ts := stubServer(nil, 50*time.Millisecond)
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:      ts.URL,
		Rate:        200,
		Duration:    300 * time.Millisecond,
		MaxInFlight: 2,
		Mix:         Mix{Taxonomy: 1},
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("slow server with cap 2 at 200 rps dropped nothing: %+v", res)
	}
	// Latency is measured from the schedule, so queueing shows up.
	if res.P50Ms < 40 {
		t.Fatalf("p50 %.1fms below the server's 50ms floor", res.P50Ms)
	}
}

// TestRunCountsFailoversAndHedgeWins drives the generator against a
// stub that stamps the router's failover/hedge marker headers on some
// responses, and checks both land in the result as first-class numbers
// — the counters a chaos drill asserts on.
func TestRunCountsFailoversAndHedgeWins(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := served.Add(1)
		if n%3 == 0 {
			w.Header().Set(failoverHeader, "2") // two hops before this answer
		}
		if n%5 == 0 {
			w.Header().Set(hedgeHeader, "win")
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		Target:   ts.URL,
		Rate:     200,
		Duration: 250 * time.Millisecond,
		Mix:      Mix{Taxonomy: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Errors["ok"] != res.Completed {
		t.Fatalf("stub traffic misclassified: %+v of %d", res.Errors, res.Completed)
	}
	n := served.Load()
	wantFailovers := (n / 3) * 2
	wantHedgeWins := n / 5
	if res.Failovers != wantFailovers || res.HedgeWins != wantHedgeWins {
		t.Fatalf("counted %d failovers / %d hedge wins over %d responses, want %d / %d",
			res.Failovers, res.HedgeWins, n, wantFailovers, wantHedgeWins)
	}
}

// TestHeaderNamesMatchRouter pins the header constants to the router's
// exported ones — the generator parses by local copies (no import in
// production code), so drift would silently zero the counters.
func TestHeaderNamesMatchRouter(t *testing.T) {
	if failoverHeader != router.FailoverHeader {
		t.Fatalf("failoverHeader %q != router.FailoverHeader %q", failoverHeader, router.FailoverHeader)
	}
	if hedgeHeader != router.HedgeHeader {
		t.Fatalf("hedgeHeader %q != router.HedgeHeader %q", hedgeHeader, router.HedgeHeader)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{Rate: 1, Duration: time.Second}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := Run(context.Background(), Options{Target: "x", Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Options{Target: "x", Rate: 1, Duration: time.Second, Mix: Mix{ASN: 1}}); err == nil {
		t.Fatal("ASN mix with no population accepted")
	}
}
