package registry

import (
	"bytes"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/worldsim"
)

func smallWorld(t *testing.T) *worldsim.World {
	t.Helper()
	cfg := worldsim.DefaultConfig()
	cfg.Scale = 0.01
	return worldsim.Generate(cfg)
}

func TestFileReflectsAllocatedLives(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	day := dates.MustParse("2015-06-15")

	for _, r := range asn.All() {
		f := a.File(r, day, true)
		if f == nil {
			// Missing/corrupt day; pick the next present one.
			for f == nil {
				day = day.AddDays(1)
				f = a.File(r, day, true)
			}
		}
		allocated := make(map[asn.ASN]delegation.Record)
		for _, rec := range f.Expand() {
			if rec.Status.Delegated() {
				allocated[rec.ASN] = rec
			}
		}
		// Every ground-truth life alive and published on `day` must appear.
		missing := 0
		for _, l := range w.Lives {
			if l.RIR != r || day < l.FileFrom || day > l.Alloc.End {
				continue
			}
			if _, ok := allocated[l.ASN]; !ok && !a.dropped(r, l.ASN, day) {
				missing++
			}
		}
		if missing > 0 {
			t.Errorf("%v: %d published lives missing from file", r, missing)
		}
	}
}

func TestExtendedOnlyStatesAbsentFromRegular(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	day := dates.MustParse("2016-03-03")
	for _, r := range asn.All() {
		if r == asn.ARIN {
			continue // no regular file this late
		}
		f := a.File(r, day, false)
		if f == nil {
			continue
		}
		for _, rec := range f.ASNs {
			if rec.Status == delegation.StatusReserved || rec.Status == delegation.StatusAvailable {
				t.Errorf("%v regular file contains %v record", r, rec.Status)
			}
			if rec.OpaqueID != "" {
				t.Errorf("%v regular file contains opaque id", r)
			}
		}
	}
}

func TestAvailablePartitionsPool(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	day := dates.MustParse("2018-01-10")
	for f := a.File(asn.RIPENCC, day, true); ; day = day.AddDays(1) {
		f = a.File(asn.RIPENCC, day, true)
		if f == nil {
			continue
		}
		// Within the 16-bit pool, every ASN is exactly one of
		// delegated/reserved/available.
		counts := make(map[asn.ASN]int)
		for _, rec := range f.Expand() {
			if rec.ASN >= 20000 && rec.ASN <= 35999 {
				counts[rec.ASN]++
			}
		}
		dup := 0
		for a16 := asn.ASN(20000); a16 <= 35999; a16++ {
			switch counts[a16] {
			case 1:
			default:
				dup++
			}
		}
		// AfriNIC-style duplicates are planted only in AfriNIC; RIPE
		// should partition cleanly except for stale-transfer overlaps
		// (which live in the *other* RIR's file, not this one).
		if dup > 0 {
			t.Errorf("%d pool ASNs not covered exactly once", dup)
		}
		return
	}
}

func TestTextSourceMatchesDirectSource(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	direct := a.Source(asn.APNIC)
	text := a.TextSource(asn.APNIC)
	days := 0
	for {
		ds, ok1 := direct.Next()
		ts, ok2 := text.Next()
		if ok1 != ok2 {
			t.Fatal("sources disagree on length")
		}
		if !ok1 {
			break
		}
		if ds.Day != ts.Day {
			t.Fatalf("day mismatch: %v vs %v", ds.Day, ts.Day)
		}
		comparable := func(d, x *delegation.File) {
			if (d == nil) != (x == nil) {
				t.Fatalf("day %v: presence mismatch", ds.Day)
			}
			if d == nil {
				return
			}
			if len(d.ASNs) != len(x.ASNs) {
				t.Fatalf("day %v: %d vs %d records", ds.Day, len(d.ASNs), len(x.ASNs))
			}
		}
		comparable(ds.Regular, ts.Regular)
		comparable(ds.Extended, ts.Extended)
		days++
		if days > 1200 {
			break // a few years of days is plenty for this check
		}
	}
	if days == 0 {
		t.Fatal("no days scanned")
	}
}

func TestCorruptBytesDoNotParse(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	found := false
	for _, r := range asn.All() {
		for d := range a.corruptReg[r] {
			b := a.CorruptBytes(r, d, false)
			if len(b) == 0 {
				continue
			}
			f, errs := delegation.ParseLenient(bytes.NewReader(b))
			if f != nil && len(f.ASNs) > 0 && len(errs) == 0 {
				t.Errorf("corrupt bytes parsed cleanly for %v %v", r, d)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no corrupt regular days in this world")
	}
}

func TestFileCountsNearWindowLength(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	for _, r := range asn.All() {
		n := a.FileCount(r)
		total := w.Config.End.Sub(FirstRegular(r)) + 1
		if n > total || float64(n) < 0.97*float64(total) {
			t.Errorf("%v: file count %d vs %d window days", r, n, total)
		}
	}
}

func TestInjectionStatsPopulated(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	st := a.InjectionStats()
	t.Logf("%+v", st)
	if st.MissingFileDays == 0 || st.PlaceholderASNs == 0 || st.MistakenAllocASNs == 0 {
		t.Error("expected injected corruption populations")
	}
	if len(a.ERXReference()) == 0 {
		t.Error("expected ERX reference data")
	}
}

func TestPlaceholderDatesAppearInFiles(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	day := dates.MustParse("2012-06-01")
	var f *delegation.File
	for f == nil {
		f = a.File(asn.RIPENCC, day, true)
		day = day.AddDays(1)
	}
	found := false
	for _, rec := range f.ASNs {
		if rec.Date == dates.MustParse("1993-09-01") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no placeholder registration dates visible in 2012 RIPE file")
	}
}
