// Package registry renders the simulated ground truth into the daily
// delegation files each RIR publishes — the regular format from its
// historical adoption date and the NRO extended format from the later
// per-RIR adoption dates (Table 1 of the paper) — and injects the §3.1
// error classes the restoration pipeline must survive: missing and
// corrupted files, record groups dropped from extended files, same-day
// regular/extended divergence, duplicate records with inconsistent
// status, registration dates that sit in the future, travel back to a
// placeholder, and inter-RIR overlaps from stale transfer data.
package registry

import (
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/worldsim"
)

// Format adoption dates per RIR (paper Table 1).
var (
	firstRegular = [asn.NumRIRs]dates.Day{
		asn.AfriNIC: dates.MustParse("2005-02-18"),
		asn.APNIC:   dates.MustParse("2003-10-09"),
		asn.ARIN:    dates.MustParse("2003-11-20"),
		asn.LACNIC:  dates.MustParse("2004-01-01"),
		asn.RIPENCC: dates.MustParse("2003-11-26"),
	}
	firstExtended = [asn.NumRIRs]dates.Day{
		asn.AfriNIC: dates.MustParse("2012-10-02"),
		asn.APNIC:   dates.MustParse("2008-02-14"),
		asn.ARIN:    dates.MustParse("2013-03-05"),
		asn.LACNIC:  dates.MustParse("2012-06-28"),
		asn.RIPENCC: dates.MustParse("2010-04-22"),
	}
	// ARIN stopped publishing regular files on 2013-08-12 (§3.1 fn. 3).
	arinLastRegular = dates.MustParse("2013-08-12")
)

// FirstRegular returns the date of an RIR's first regular delegation file.
func FirstRegular(r asn.RIR) dates.Day { return firstRegular[r] }

// FirstExtended returns the date of an RIR's first extended file.
func FirstExtended(r asn.RIR) dates.Day { return firstExtended[r] }

// recordSpan is one resource record valid over a day range in one RIR's
// files. Block records (Count > 1) cover consecutive ASNs.
type recordSpan struct {
	From, To dates.Day
	Rec      delegation.Record
	ExtOnly  bool // only in extended files (reserved entries)
	RegOnly  bool // only in regular files (extended-drop corruption)
}

// ERXEntry is one line of the pre-delegation-era ARIN reference data the
// paper used to restore original ERX registration dates (§3.1 step v).
type ERXEntry struct {
	ASN     asn.ASN
	RegDate dates.Day
}

// Archive is the rendered delegation-file archive for one world.
type Archive struct {
	world *worldsim.World
	start dates.Day
	end   dates.Day

	// spans per RIR, sorted by From.
	spans [asn.NumRIRs][]recordSpan

	// missing[format][rir] marks days whose file is absent from the
	// archive; corrupt marks days whose file is present but mangled.
	missingReg   [asn.NumRIRs]map[dates.Day]bool
	missingExt   [asn.NumRIRs]map[dates.Day]bool
	corruptReg   [asn.NumRIRs]map[dates.Day]bool
	corruptExt   [asn.NumRIRs]map[dates.Day]bool
	dropEpisodes [asn.NumRIRs][]dropEpisode
	divergeDays  [asn.NumRIRs]map[dates.Day]bool
	erx          []ERXEntry
	injectStats  InjectionStats
}

// InjectionStats counts the corruption the archive carries, for tests and
// the restoration report to compare against.
type InjectionStats struct {
	MissingFileDays     int
	CorruptFileDays     int
	DroppedRecordDays   int // extended-file record-group drops
	DuplicateRecordASNs int
	FutureRegDateASNs   int
	PlaceholderASNs     int
	StaleTransferASNs   int
	MistakenAllocASNs   int
	RegDateCorrections  int
}

// InjectionStats reports what corruption was injected.
func (a *Archive) InjectionStats() InjectionStats { return a.injectStats }

// ERXReference returns the ERX original-registration reference table.
func (a *Archive) ERXReference() []ERXEntry {
	out := make([]ERXEntry, len(a.erx))
	copy(out, a.erx)
	return out
}

// Window returns the archive's day range (the world's window).
func (a *Archive) Window() (start, end dates.Day) { return a.start, a.end }

// World returns the underlying ground truth (for validation only).
func (a *Archive) World() *worldsim.World { return a.world }

// HasFile reports whether the archive holds a parseable file for the
// given registry, day and format.
func (a *Archive) HasFile(r asn.RIR, d dates.Day, extended bool) bool {
	if extended {
		return d >= firstExtended[r] && d <= a.end && !a.missingExt[r][d] && !a.corruptExt[r][d]
	}
	if d < firstRegular[r] || d > a.end {
		return false
	}
	if r == asn.ARIN && d > arinLastRegular {
		return false
	}
	return !a.missingReg[r][d] && !a.corruptReg[r][d]
}

// FileStatus distinguishes absent, corrupt and present files.
type FileStatus uint8

// File statuses for a (registry, day, format) triple.
const (
	FileAbsent FileStatus = iota
	FileCorrupt
	FilePresent
)

// Status returns the archive's file status for the triple.
func (a *Archive) Status(r asn.RIR, d dates.Day, extended bool) FileStatus {
	if extended {
		if d < firstExtended[r] || d > a.end {
			return FileAbsent
		}
		if a.missingExt[r][d] {
			return FileAbsent
		}
		if a.corruptExt[r][d] {
			return FileCorrupt
		}
		return FilePresent
	}
	if d < firstRegular[r] || d > a.end || (r == asn.ARIN && d > arinLastRegular) {
		return FileAbsent
	}
	if a.missingReg[r][d] {
		return FileAbsent
	}
	if a.corruptReg[r][d] {
		return FileCorrupt
	}
	return FilePresent
}

// File materializes the delegation file for (registry, day, format), or
// nil if the archive has no parseable file there. Corrupt days return nil
// from File; CorruptBytes renders their mangled content.
func (a *Archive) File(r asn.RIR, d dates.Day, extended bool) *delegation.File {
	if a.Status(r, d, extended) != FilePresent {
		return nil
	}
	return a.buildFile(r, d, extended)
}

func (a *Archive) buildFile(r asn.RIR, d dates.Day, extended bool) *delegation.File {
	return a.buildFileScratch(r, d, extended, nil)
}

// buildFileScratch is buildFile with the record slices built inside
// caller-owned scratch (which may be nil). The returned file aliases the
// scratch's backing arrays, so the caller must be done with the file
// before reusing the scratch — the contract the render→reparse text
// source relies on to build each day's transient file without fresh
// allocations.
func (a *Archive) buildFileScratch(r asn.RIR, d dates.Day, extended bool, sc *fileScratch) *delegation.File {
	if sc == nil {
		sc = &fileScratch{}
	}
	f := &sc.file
	*f = delegation.File{
		Version:   "2",
		Registry:  r,
		Serial:    d.Compact(),
		End:       d,
		UTCOffset: "+0000",
		Extended:  extended,
		ASNs:      sc.recs[:0],
	}
	earliest := d
	for _, sp := range a.spans[r] {
		if d < sp.From || d > sp.To {
			continue
		}
		if sp.ExtOnly && !extended {
			continue
		}
		if sp.RegOnly && extended {
			continue
		}
		if extended && a.dropped(r, sp.Rec.ASN, d) {
			continue // §3.1(ii): record group vanished from extended file
		}
		if !extended && a.divergeDays[r][d] && sp.From == d {
			continue // §3.1(iii): regular file lags on brand-new records
		}
		rec := sp.Rec
		if !extended {
			if rec.Status == delegation.StatusReserved || rec.Status == delegation.StatusAvailable {
				continue // regular files list only delegated resources
			}
			rec.OpaqueID = ""
		}
		if rec.Date != dates.None && rec.Date < earliest {
			earliest = rec.Date
		}
		f.ASNs = append(f.ASNs, rec)
	}
	f.Start = earliest
	if extended {
		a.appendAvailable(f, sc, r, d)
	}
	sc.recs = f.ASNs[:0]
	f.Records = len(f.ASNs)
	f.Summaries = append(sc.summaries[:0], delegation.Summary{Registry: r, Type: "asn", Count: len(f.ASNs)})
	sc.summaries = f.Summaries[:0]
	return f
}

// fileScratch holds the reusable backing state for buildFileScratch: the
// transient File value itself plus its record, summary and
// occupied-ASN slices. One scratch serves one goroutine's day loop.
type fileScratch struct {
	file      delegation.File
	recs      []delegation.Record
	summaries []delegation.Summary
	occupied  []asn.ASN
}

// appendAvailable adds aggregated available-pool block records, the
// extended format's "comprehensive picture" of unallocated resources.
func (a *Archive) appendAvailable(f *delegation.File, sc *fileScratch, r asn.RIR, d dates.Day) {
	// Collect the ASNs currently occupied (delegated or reserved).
	occupied := sc.occupied[:0]
	for _, rec := range f.ASNs {
		for i := 0; i < rec.Count; i++ {
			occupied = append(occupied, rec.ASN+asn.ASN(i))
		}
	}
	sort.Slice(occupied, func(i, j int) bool { return occupied[i] < occupied[j] })
	sc.occupied = occupied[:0]

	emit := func(lo, hi asn.ASN) {
		// Walk the pool range, emitting the gaps between occupied ASNs.
		i := sort.Search(len(occupied), func(i int) bool { return occupied[i] >= lo })
		cur := lo
		for ; i < len(occupied) && occupied[i] <= hi; i++ {
			if occupied[i] > cur {
				f.ASNs = append(f.ASNs, delegation.Record{
					Registry: r, ASN: cur, Count: int(occupied[i] - cur),
					Date: dates.None, Status: delegation.StatusAvailable,
				})
			}
			if occupied[i] >= cur {
				cur = occupied[i] + 1
			}
		}
		if cur <= hi {
			f.ASNs = append(f.ASNs, delegation.Record{
				Registry: r, ASN: cur, Count: int(hi-cur) + 1,
				Date: dates.None, Status: delegation.StatusAvailable,
			})
		}
	}
	lo16, hi16, base32, used32 := a.poolBounds(r)
	emit(lo16, hi16)
	if used32 > 0 {
		emit(base32, base32+asn.ASN(used32)-1)
	}
	f.Records = len(f.ASNs)
}

// poolBounds returns the registry's 16-bit range and the extent of its
// 32-bit range actually touched by the world.
func (a *Archive) poolBounds(r asn.RIR) (lo16, hi16, base32 asn.ASN, used32 int) {
	lo16, hi16, base32 = poolRanges[r].lo16, poolRanges[r].hi16, poolRanges[r].base32
	maxUsed := asn.ASN(0)
	for _, l := range a.world.Lives {
		if l.RIR == r && l.ASN >= base32 && l.ASN > maxUsed {
			maxUsed = l.ASN
		}
	}
	if maxUsed > 0 {
		used32 = int(maxUsed-base32) + 64 // a little headroom, like IANA blocks
	}
	return lo16, hi16, base32, used32
}

// poolRanges mirrors the worldsim registry pools; the registry package
// publishes availability against the same ranges the generator draws
// from.
var poolRanges = [asn.NumRIRs]struct {
	lo16, hi16, base32 asn.ASN
}{
	asn.AfriNIC: {36000, 37999, 327680},
	asn.APNIC:   {38000, 45999, 131072},
	asn.ARIN:    {1000, 19999, 393216},
	asn.LACNIC:  {46000, 52999, 262144},
	asn.RIPENCC: {20000, 35999, 196608},
}

// IANABlockHolds reports whether ASN x falls inside the blocks IANA
// delegated to registry r — the public knowledge the paper's §3.1
// step (vi) uses to identify mistaken apparent allocations. The 32-bit
// blocks extend 60,000 numbers above each registry's base, mirroring the
// simulated IANA delegations.
func IANABlockHolds(r asn.RIR, x asn.ASN) bool {
	p := poolRanges[r]
	if x >= p.lo16 && x <= p.hi16 {
		return true
	}
	return x >= p.base32 && x < p.base32+60000
}
