package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
)

// DirSource streams delegation files from a directory on disk, so the
// restoration pipeline can run over real downloaded archives (or the
// files this package exports). Files must be named the way the RIR FTP
// sites name them:
//
//	delegated-<registry>-<YYYYMMDD>            (regular format)
//	delegated-<registry>-extended-<YYYYMMDD>   (extended format)
//
// Days present in neither form are reported as missing snapshots, which
// the restoration's step (i) bridges. Unparseable files are treated as
// corrupt (also missing).
type DirSource struct {
	rir  asn.RIR
	dir  string
	days []dates.Day
	reg  map[dates.Day]string
	ext  map[dates.Day]string
	i    int
	rep  IngestReport
}

// IngestReport classifies what a DirSource scan and stream skipped, so
// damaged archives surface in the pipeline Health report instead of
// silently shrinking the dataset.
type IngestReport struct {
	// FilesMatched counts files with well-formed delegation names.
	FilesMatched int
	// CorruptNames lists files that matched the registry's naming prefix
	// but whose embedded date failed to parse — corrupt snapshots (a
	// mirror glitch or interrupted download), not unrelated files.
	CorruptNames []string
	// UnusableFiles counts named files whose content failed to parse
	// (reported per read as corrupt snapshots in the day stream).
	UnusableFiles int
}

// Report returns the ingest accounting accumulated so far. The name scan
// runs in NewDirSource; UnusableFiles grows as days are streamed.
func (s *DirSource) Report() IngestReport { return s.rep }

// NewDirSource scans dir for one registry's delegation files.
func NewDirSource(dir string, rir asn.RIR) (*DirSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading archive dir: %w", err)
	}
	s := &DirSource{
		rir: rir, dir: dir,
		reg: make(map[dates.Day]string),
		ext: make(map[dates.Day]string),
	}
	prefix := "delegated-" + rir.Token() + "-"
	extPrefix := prefix + "extended-"
	seen := make(map[dates.Day]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var dateStr string
		var extended bool
		switch {
		case len(name) >= len(extPrefix)+8 && name[:len(extPrefix)] == extPrefix:
			dateStr, extended = name[len(extPrefix):len(extPrefix)+8], true
		case len(name) >= len(prefix)+8 && name[:len(prefix)] == prefix:
			dateStr, extended = name[len(prefix):len(prefix)+8], false
		default:
			continue
		}
		d, err := dates.ParseCompact(dateStr)
		if err != nil || d == dates.None {
			// The file is named like a delegation snapshot but carries a
			// garbage date: a corrupt snapshot, recorded so restoration
			// step (i) and the Health report can account for it.
			s.rep.CorruptNames = append(s.rep.CorruptNames, name)
			continue
		}
		s.rep.FilesMatched++
		if extended {
			s.ext[d] = name
		} else {
			s.reg[d] = name
		}
		if !seen[d] {
			seen[d] = true
			s.days = append(s.days, d)
		}
	}
	if len(s.days) == 0 {
		return nil, fmt.Errorf("registry: no %s delegation files in %s", rir.Token(), dir)
	}
	sort.Slice(s.days, func(i, j int) bool { return s.days[i] < s.days[j] })
	// Fill the day grid so missing days are surfaced to the restoration.
	first, last := s.days[0], s.days[len(s.days)-1]
	s.days = s.days[:0]
	for d := first; d <= last; d = d.AddDays(1) {
		s.days = append(s.days, d)
	}
	return s, nil
}

// Registry implements Source.
func (s *DirSource) Registry() asn.RIR { return s.rir }

// Next implements Source.
func (s *DirSource) Next() (Snapshot, bool) {
	if s.i >= len(s.days) {
		return Snapshot{}, false
	}
	d := s.days[s.i]
	s.i++
	snap := Snapshot{Day: d}
	snap.Regular, snap.RegularCorrupt = s.load(s.reg[d])
	snap.Extended, snap.ExtendedCorrupt = s.load(s.ext[d])
	return snap, true
}

// load parses one file leniently; corrupt reports a file that existed on
// disk but was unusable (open failure or unparseable content).
func (s *DirSource) load(name string) (parsed *delegation.File, corrupt bool) {
	if name == "" {
		return nil, false
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		s.rep.UnusableFiles++
		return nil, true
	}
	defer f.Close()
	parsed, _ = delegation.ParseLenient(f)
	if parsed == nil || (len(parsed.ASNs) == 0 && len(parsed.Other) == 0) {
		s.rep.UnusableFiles++
		return nil, true
	}
	return parsed, false
}

// ExportDir writes the archive's files for [from, to] into dir using the
// RIR FTP naming convention, producing an on-disk archive NewDirSource
// can read back. Corrupt days are written with their mangled bytes;
// missing days are skipped.
func (a *Archive) ExportDir(dir string, from, to dates.Day) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range asn.All() {
		for d := from; d <= to; d = d.AddDays(1) {
			for _, extended := range []bool{false, true} {
				name := "delegated-" + r.Token() + "-"
				if extended {
					name += "extended-"
				}
				name += d.Compact()
				path := filepath.Join(dir, name)
				switch a.Status(r, d, extended) {
				case FileAbsent:
					continue
				case FileCorrupt:
					if err := os.WriteFile(path, a.CorruptBytes(r, d, extended), 0o644); err != nil {
						return err
					}
				case FilePresent:
					f, err := os.Create(path)
					if err != nil {
						return err
					}
					if _, err := a.buildFile(r, d, extended).WriteTo(f); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
