package registry

import (
	"os"
	"path/filepath"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/worldsim"
)

func TestExportDirRoundTrip(t *testing.T) {
	cfg := worldsim.DefaultConfig()
	cfg.Scale = 0.01
	cfg.Start = dates.MustParse("2004-01-01")
	cfg.End = dates.MustParse("2004-06-30")
	w := worldsim.Generate(cfg)
	a := Build(w)

	dir := t.TempDir()
	from := dates.MustParse("2004-02-01")
	to := dates.MustParse("2004-03-31")
	if err := a.ExportDir(dir, from, to); err != nil {
		t.Fatal(err)
	}

	for _, r := range []asn.RIR{asn.APNIC, asn.ARIN} {
		src, err := NewDirSource(dir, r)
		if err != nil {
			t.Fatal(err)
		}
		if src.Registry() != r {
			t.Fatal("wrong registry")
		}
		direct := a.Source(r)
		// Skip the direct source ahead to the export window.
		var dsnap Snapshot
		for {
			var ok bool
			dsnap, ok = direct.Next()
			if !ok {
				t.Fatal("direct source exhausted early")
			}
			if dsnap.Day >= from {
				break
			}
		}
		days := 0
		for {
			fsnap, ok := src.Next()
			if !ok {
				break
			}
			if fsnap.Day != dsnap.Day {
				t.Fatalf("day mismatch: %v vs %v", fsnap.Day, dsnap.Day)
			}
			if (fsnap.Regular == nil) != (dsnap.Regular == nil) {
				t.Fatalf("%v regular presence differs", fsnap.Day)
			}
			if fsnap.Regular != nil && len(fsnap.Regular.ASNs) != len(dsnap.Regular.ASNs) {
				t.Fatalf("%v regular record count differs: %d vs %d",
					fsnap.Day, len(fsnap.Regular.ASNs), len(dsnap.Regular.ASNs))
			}
			days++
			var ok2 bool
			dsnap, ok2 = direct.Next()
			if !ok2 && days < to.Sub(from) {
				t.Fatal("direct source ended early")
			}
		}
		if days < 50 {
			t.Fatalf("only %d days streamed", days)
		}
	}
}

func TestNewDirSourceErrors(t *testing.T) {
	if _, err := NewDirSource(t.TempDir(), asn.APNIC); err == nil {
		t.Error("empty dir should fail")
	}
	if _, err := NewDirSource("/nonexistent-path-xyz", asn.APNIC); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestDirSourceSkipsForeignAndJunkFiles(t *testing.T) {
	dir := t.TempDir()
	// One valid APNIC file, one RIPE file, one junk file, one unparseable.
	valid := "2|apnic|20040101|1|19930901|20040101|+1000\napnic|JP|asn|38500|1|20040101|allocated\n"
	if err := os.WriteFile(filepath.Join(dir, "delegated-apnic-20040101"), []byte(valid), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "delegated-ripencc-20040101"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "delegated-apnic-20040102"), []byte("garbage|file"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewDirSource(dir, asn.APNIC)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := src.Next()
	if !ok || snap.Regular == nil || len(snap.Regular.ASNs) != 1 {
		t.Fatalf("first snapshot = %+v, ok=%v", snap, ok)
	}
	snap, ok = src.Next()
	if !ok || snap.Regular != nil {
		t.Fatalf("garbage file should read as missing: %+v", snap)
	}
	if !snap.RegularCorrupt {
		t.Error("garbage file should read as corrupt, not merely missing")
	}
	if _, ok := src.Next(); ok {
		t.Error("source should end after the last named day")
	}
	rep := src.Report()
	if rep.FilesMatched != 2 || rep.UnusableFiles != 1 || len(rep.CorruptNames) != 0 {
		t.Errorf("ingest report = %+v", rep)
	}
}

func TestDirSourceCountsCorruptNames(t *testing.T) {
	dir := t.TempDir()
	valid := "2|apnic|20040101|1|19930901|20040101|+1000\napnic|JP|asn|38500|1|20040101|allocated\n"
	for name, content := range map[string]string{
		"delegated-apnic-20040101": valid,
		// Delegation-named files whose embedded date is garbage: corrupt
		// snapshots, recorded by name rather than silently skipped.
		"delegated-apnic-2004010x":          valid,
		"delegated-apnic-extended-00000000": valid,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewDirSource(dir, asn.APNIC)
	if err != nil {
		t.Fatal(err)
	}
	rep := src.Report()
	if rep.FilesMatched != 1 || len(rep.CorruptNames) != 2 {
		t.Errorf("ingest report = %+v", rep)
	}
}
