package registry

import (
	"bytes"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/delegation"
)

// TestTextSourceFilesDoNotAliasScratch pins the textSource pooling
// contract: the parsed files a snapshot yields must be independent of
// the source's reused renderer, parser and build scratch. We capture a
// day's files, drain many more days through the same source (recycling
// all three), scribble the scratch directly, and assert the captured
// files render to the same bytes as before.
func TestTextSourceFilesDoNotAliasScratch(t *testing.T) {
	w := smallWorld(t)
	a := Build(w)
	src := a.TextSource(asn.RIPENCC).(*textSource)

	// Find the first day with a regular file.
	var held *delegation.File
	for held == nil {
		snap, ok := src.Next()
		if !ok {
			t.Fatal("source exhausted before yielding a file")
		}
		held = snap.Regular
	}
	var rd delegation.Renderer
	before := append([]byte(nil), rd.Render(held)...)

	// Drain more days through the same source: every Next reuses the
	// renderer buffer, the parser's field scratch and the file scratch.
	for i := 0; i < 30; i++ {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	// Scribble the build scratch directly for good measure.
	for i := range src.scratch.recs {
		src.scratch.recs[i] = delegation.Record{}
	}
	for i := range src.scratch.summaries {
		src.scratch.summaries[i] = delegation.Summary{}
	}
	for i := range src.scratch.occupied {
		src.scratch.occupied[i] = 0
	}
	src.scratch.file = delegation.File{}

	after := rd.Render(held)
	if !bytes.Equal(before, after) {
		t.Fatal("held snapshot file changed after source scratch was recycled and scribbled")
	}
}
