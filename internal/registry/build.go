package registry

import (
	"math/rand"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/intervals"
	"parallellives/internal/worldsim"
)

// dropEpisode suppresses a contiguous ASN range from extended files for a
// short day range (the "large ASN count drops" of §3.1 step ii).
type dropEpisode struct {
	Days       intervals.Interval
	ALo, AHi   asn.ASN
	FromNewest bool
}

// ripePlaceholder is the bogus registration date RIPE ERX records travel
// back to (§3.1 step v).
var ripePlaceholder = dates.MustParse("1993-09-01")

// Build renders the world's ground truth into a delegation archive with
// the §3.1 error classes injected. The corruption plan is deterministic:
// it derives from the world's seed.
func Build(w *worldsim.World) *Archive {
	a := &Archive{
		world: w,
		start: w.Config.Start,
		end:   w.Config.End,
	}
	rng := rand.New(rand.NewSource(w.Config.Seed ^ 0x5eed_4e61))
	for _, r := range asn.All() {
		a.missingReg[r] = make(map[dates.Day]bool)
		a.missingExt[r] = make(map[dates.Day]bool)
		a.corruptReg[r] = make(map[dates.Day]bool)
		a.corruptExt[r] = make(map[dates.Day]bool)
		a.divergeDays[r] = make(map[dates.Day]bool)
	}

	a.buildSpans(rng)
	a.injectRegDateQuirks(rng)
	a.injectDuplicates(rng)
	a.injectStaleTransfers(rng)
	a.injectMistakenAllocations(rng)
	a.injectFileGaps(rng)
	a.injectDropEpisodes(rng)
	a.injectDivergence(rng)

	for _, r := range asn.All() {
		sort.SliceStable(a.spans[r], func(i, j int) bool {
			if a.spans[r][i].Rec.ASN != a.spans[r][j].Rec.ASN {
				return a.spans[r][i].Rec.ASN < a.spans[r][j].Rec.ASN
			}
			return a.spans[r][i].From < a.spans[r][j].From
		})
	}
	return a
}

// buildSpans lays down the honest record spans for every life: the
// allocated span (grouping NIR blocks into block records) and the
// post-deallocation reserved span in extended files.
func (a *Archive) buildSpans(rng *rand.Rand) {
	w := a.world
	type blockKey struct {
		org     int
		reg     dates.Day
		from    dates.Day
		to      dates.Day
		ext     bool
		kindNIR bool
	}
	grouped := make(map[blockKey][]*worldsim.Life)
	for i := range w.Lives {
		l := &w.Lives[i]
		if l.Kind == worldsim.LifeNIRBlock {
			k := blockKey{org: l.OrgID, reg: l.RegDate, from: l.FileFrom, to: l.Alloc.End, kindNIR: true}
			grouped[k] = append(grouped[k], l)
			continue
		}
		a.addLifeSpans(rng, l, 1)
	}
	// Emit NIR blocks as contiguous runs of block records.
	keys := make([]blockKey, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].org != keys[j].org {
			return keys[i].org < keys[j].org
		}
		return keys[i].reg < keys[j].reg
	})
	for _, k := range keys {
		lives := grouped[k]
		sort.Slice(lives, func(i, j int) bool { return lives[i].ASN < lives[j].ASN })
		runStart := 0
		for i := 1; i <= len(lives); i++ {
			if i < len(lives) && lives[i].ASN == lives[i-1].ASN+1 {
				continue
			}
			a.addLifeSpans(rng, lives[runStart], i-runStart)
			runStart = i
		}
	}
}

// addLifeSpans emits the allocated (and reserved) spans for a life whose
// record covers `count` consecutive ASNs starting at the life's ASN.
func (a *Archive) addLifeSpans(rng *rand.Rand, l *worldsim.Life, count int) {
	status := delegation.StatusAllocated
	if l.RIR == asn.ARIN && rng.Float64() < 0.4 {
		status = delegation.StatusAssigned
	}
	rec := delegation.Record{
		Registry: l.RIR,
		CC:       l.CC,
		ASN:      l.ASN,
		Count:    count,
		Date:     l.RegDate,
		Status:   status,
		OpaqueID: opaqueID(l.OrgID),
	}
	from := l.FileFrom
	if from < a.start {
		from = a.start
	}
	to := dates.Min(l.Alloc.End, a.end)
	if to < from {
		return // deallocated before its record would have been published
	}
	a.spans[l.RIR] = append(a.spans[l.RIR], recordSpan{From: from, To: to, Rec: rec})

	if l.Kind == worldsim.LifeERX {
		a.erx = append(a.erx, ERXEntry{ASN: l.ASN, RegDate: l.RegDate})
	}

	// Reserved quarantine after deallocation, extended files only.
	if !l.Open && l.QuarantineDays > 0 && l.Alloc.End < a.end {
		resRec := rec
		resRec.Status = delegation.StatusReserved
		resRec.CC = ""
		resFrom := l.Alloc.End.AddDays(1)
		resTo := dates.Min(l.Alloc.End.AddDays(l.QuarantineDays), a.end)
		if resTo >= resFrom {
			a.spans[l.RIR] = append(a.spans[l.RIR], recordSpan{
				From: resFrom, To: resTo, Rec: resRec, ExtOnly: true,
			})
		}
	}
}

func opaqueID(org int) string {
	const hexdigits = "0123456789abcdef"
	var b [8]byte
	v := uint32(org)*2654435761 + 0x9e37
	for i := range b {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return "o-" + string(b[:])
}

// injectRegDateQuirks plants the registration-date error classes:
// placeholder back-travel (RIPE ERX), future dates (AfriNIC) and benign
// same-life corrections.
func (a *Archive) injectRegDateQuirks(rng *rand.Rand) {
	for _, r := range asn.All() {
		spans := a.spans[r]
		var rebuilt []recordSpan
		for _, sp := range spans {
			switch {
			case sp.Rec.Status == delegation.StatusReserved || sp.Rec.Status == delegation.StatusAvailable:
				rebuilt = append(rebuilt, sp)
			case r == asn.RIPENCC && a.isPlaceholderLife(sp.Rec.ASN, sp.Rec.Date):
				// The date shows correctly at first, then travels back to
				// the 1993-09-01 placeholder from a switch day onward.
				sw := dates.MustParse("2004-06-01").AddDays(rng.Intn(400))
				if sw <= sp.From || sw >= sp.To {
					ph := sp
					ph.Rec.Date = ripePlaceholder
					rebuilt = append(rebuilt, ph)
					a.injectStats.PlaceholderASNs++
					continue
				}
				before, after := sp, sp
				before.To = sw.AddDays(-1)
				after.From = sw
				after.Rec.Date = ripePlaceholder
				rebuilt = append(rebuilt, before, after)
				a.injectStats.PlaceholderASNs++
			case r == asn.AfriNIC && rng.Float64() < 0.01 && sp.To.Sub(sp.From) > 20:
				// Future registration date for the first few file days.
				k := 1 + rng.Intn(3)
				fut := sp
				fut.To = sp.From.AddDays(k - 1)
				fut.Rec.Date = sp.From.AddDays(k + 1 + rng.Intn(3))
				rest := sp
				rest.From = sp.From.AddDays(k)
				rebuilt = append(rebuilt, fut, rest)
				a.injectStats.FutureRegDateASNs++
			case rng.Float64() < 0.0015 && sp.To.Sub(sp.From) > 400:
				// Benign administrative correction: registration date
				// shifts slightly mid-life without deallocation (§4.1).
				sw := sp.From.AddDays(200 + rng.Intn(sp.To.Sub(sp.From)-300))
				before, after := sp, sp
				before.To = sw.AddDays(-1)
				after.From = sw
				after.Rec.Date = sp.Rec.Date.AddDays(1 + rng.Intn(20))
				rebuilt = append(rebuilt, before, after)
				a.injectStats.RegDateCorrections++
			default:
				rebuilt = append(rebuilt, sp)
			}
		}
		a.spans[r] = rebuilt
	}
}

// isPlaceholderLife reports whether (asn, regdate) matches a ground-truth
// life carrying the RIPE placeholder quirk.
func (a *Archive) isPlaceholderLife(x asn.ASN, reg dates.Day) bool {
	for _, l := range a.world.Lives {
		if l.ASN == x && l.RegDate == reg && l.PlaceholderQuirk {
			return true
		}
	}
	return false
}

// injectDuplicates plants AfriNIC's duplicate records with inconsistent
// status (§3.1 step iv): an extra reserved row shadowing an allocated one
// for months.
func (a *Archive) injectDuplicates(rng *rand.Rand) {
	want := 4
	spans := a.spans[asn.AfriNIC]
	for _, sp := range spans {
		if want == 0 {
			break
		}
		if sp.Rec.Status != delegation.StatusAllocated || sp.To.Sub(sp.From) < 400 || rng.Float64() > 0.05 {
			continue
		}
		dup := sp
		dup.Rec.Status = delegation.StatusReserved
		dup.From = sp.From.AddDays(100 + rng.Intn(200))
		dup.To = dup.From.AddDays(60 + rng.Intn(120))
		if dup.To > sp.To {
			dup.To = sp.To
		}
		a.spans[asn.AfriNIC] = append(a.spans[asn.AfriNIC], dup)
		a.injectStats.DuplicateRecordASNs++
		want--
	}
}

// injectStaleTransfers keeps transferred ASNs in the origin registry's
// files past the transfer date (§3.1 step vi, cause i).
func (a *Archive) injectStaleTransfers(rng *rand.Rand) {
	for i := range a.world.Lives {
		l := &a.world.Lives[i]
		if !l.HasTransfer || rng.Float64() > 0.5 {
			continue
		}
		// Extend the origin-RIR span past the hand-off.
		for si := range a.spans[l.RIR] {
			sp := &a.spans[l.RIR][si]
			if sp.Rec.ASN == l.ASN && sp.To == dates.Min(l.Alloc.End, a.end) &&
				sp.Rec.Status.Delegated() {
				ext := dates.Min(sp.To.AddDays(30+rng.Intn(220)), a.end)
				sp.To = ext
				a.injectStats.StaleTransferASNs++
				break
			}
		}
	}
}

// injectMistakenAllocations plants apparent allocations of ASNs from
// blocks IANA assigned to a different registry (§3.1 step vi, cause ii).
func (a *Archive) injectMistakenAllocations(rng *rand.Rand) {
	if a.end.Sub(a.start) < 900 {
		return // window too short to host episodes
	}
	episodes := 2
	for e := 0; e < episodes; e++ {
		wrong := asn.RIR(rng.Intn(int(asn.NumRIRs)))
		victim := asn.RIR((int(wrong) + 1 + rng.Intn(int(asn.NumRIRs)-1)) % int(asn.NumRIRs))
		// Pick ASNs high in the victim's 16-bit pool, beyond what the
		// generator allocated.
		base := poolRanges[victim].hi16 - asn.ASN(20+rng.Intn(100))
		n := 3 + rng.Intn(6)
		from := a.start.AddDays(200 + rng.Intn(a.end.Sub(a.start)-600))
		to := from.AddDays(50 + rng.Intn(200))
		for i := 0; i < n; i++ {
			a.spans[wrong] = append(a.spans[wrong], recordSpan{
				From: from, To: to,
				Rec: delegation.Record{
					Registry: wrong, CC: "ZZ", ASN: base + asn.ASN(i), Count: 1,
					Date: from, Status: delegation.StatusAllocated,
					OpaqueID: opaqueID(999000 + e),
				},
			})
			a.injectStats.MistakenAllocASNs++
		}
	}
}

// injectFileGaps removes or corrupts whole files (§3.1: under 1% of days,
// with RIPE's 7-consecutive-day regular-file gap as the worst case).
func (a *Archive) injectFileGaps(rng *rand.Rand) {
	for _, r := range asn.All() {
		for d := firstRegular[r]; d <= a.end; d = d.AddDays(1) {
			switch x := rng.Float64(); {
			case x < 0.006:
				a.missingReg[r][d] = true
				a.injectStats.MissingFileDays++
			case x < 0.008:
				a.corruptReg[r][d] = true
				a.injectStats.CorruptFileDays++
			}
		}
		for d := firstExtended[r]; d <= a.end; d = d.AddDays(1) {
			switch x := rng.Float64(); {
			case x < 0.006:
				a.missingExt[r][d] = true
				a.injectStats.MissingFileDays++
			case x < 0.008:
				a.corruptExt[r][d] = true
				a.injectStats.CorruptFileDays++
			}
		}
	}
	// RIPE's longest run: 7 consecutive regular files missing.
	runStart := dates.MustParse("2008-09-14")
	for i := 0; i < 7; i++ {
		d := runStart.AddDays(i)
		if !a.missingReg[asn.RIPENCC][d] {
			a.missingReg[asn.RIPENCC][d] = true
			a.injectStats.MissingFileDays++
		}
	}
}

// injectDropEpisodes plants the extended-file record-group drops of §3.1
// step ii: a contiguous chunk of ASNs vanishes from the extended file for
// a day or two while the regular file still carries them.
func (a *Archive) injectDropEpisodes(rng *rand.Rand) {
	for _, r := range asn.All() {
		if r == asn.ARIN {
			continue // ARIN has no regular files late in the window
		}
		n := 1 + rng.Intn(2)
		for e := 0; e < n; e++ {
			lo := poolRanges[r].lo16 + asn.ASN(rng.Intn(500))
			hi := lo + asn.ASN(150+rng.Intn(400))
			span := a.end.Sub(firstExtended[r])
			if span < 400 {
				continue
			}
			day := firstExtended[r].AddDays(100 + rng.Intn(span-200))
			dur := 1 + rng.Intn(2)
			a.dropEpisodes[r] = append(a.dropEpisodes[r], dropEpisode{
				Days: intervals.New(day, day.AddDays(dur-1)),
				ALo:  lo, AHi: hi,
			})
			a.injectStats.DroppedRecordDays += dur
		}
	}
}

// injectDivergence plants same-day regular/extended differences (§3.1
// step iii, affecting all RIRs but AfriNIC): on divergent days the
// regular file lags a day behind on new records.
func (a *Archive) injectDivergence(rng *rand.Rand) {
	for _, r := range asn.All() {
		if r == asn.AfriNIC {
			continue
		}
		for d := firstExtended[r]; d <= a.end; d = d.AddDays(1) {
			if rng.Float64() < 0.018 {
				a.divergeDays[r][d] = true
			}
		}
	}
}
