package registry

import (
	"bytes"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
)

// dropped reports whether ASN x is suppressed from r's extended file on d.
func (a *Archive) dropped(r asn.RIR, x asn.ASN, d dates.Day) bool {
	for _, ep := range a.dropEpisodes[r] {
		if ep.Days.Contains(d) && x >= ep.ALo && x <= ep.AHi {
			return true
		}
	}
	return false
}

// Snapshot is one registry-day of delegation data: either file may be nil
// when absent or unparseable.
type Snapshot struct {
	Day      dates.Day
	Regular  *delegation.File
	Extended *delegation.File
	// RegularCorrupt / ExtendedCorrupt report that the day's file existed
	// in the archive but was unusable — retrieved bytes that failed to
	// parse, as opposed to a file that was never there. The corresponding
	// File field is nil; the restoration pipeline bridges the day either
	// way but counts the two classes separately.
	RegularCorrupt  bool
	ExtendedCorrupt bool
}

// Source streams one registry's snapshots in day order — the interface
// the restoration pipeline consumes. Implementations outside this package
// can feed the pipeline from real archives.
type Source interface {
	Registry() asn.RIR
	// Next returns the next day's snapshot; ok is false at end of stream.
	Next() (Snapshot, bool)
}

// directSource yields file objects straight from the archive.
type directSource struct {
	a   *Archive
	rir asn.RIR
	day dates.Day
}

// Source returns a Source yielding materialized file objects, one day at
// a time from the registry's first file date (clamped to the archive
// window, so truncated-window configurations do not emit empty
// pre-window files) to the window end.
func (a *Archive) Source(r asn.RIR) Source {
	return &directSource{a: a, rir: r, day: dates.Max(firstRegular[r], a.start)}
}

func (s *directSource) Registry() asn.RIR { return s.rir }

func (s *directSource) Next() (Snapshot, bool) {
	_, end := s.a.Window()
	if s.day > end {
		return Snapshot{}, false
	}
	d := s.day
	s.day = s.day.AddDays(1)
	return Snapshot{
		Day:             d,
		Regular:         s.a.File(s.rir, d, false),
		Extended:        s.a.File(s.rir, d, true),
		RegularCorrupt:  s.a.Status(s.rir, d, false) == FileCorrupt,
		ExtendedCorrupt: s.a.Status(s.rir, d, true) == FileCorrupt,
	}, true
}

// textSource serializes each file to delegation-file text and re-parses
// it leniently — the full wire-format round trip, including corrupt days
// whose mangled bytes fail to parse. The renderer, parser and build
// scratch are reused across days: a source is consumed by exactly one
// goroutine, and the parsed files it yields never alias the scratch.
type textSource struct {
	a       *Archive
	rir     asn.RIR
	day     dates.Day
	rend    delegation.Renderer
	parser  delegation.Parser
	scratch fileScratch
}

// TextSource returns a Source that round-trips every file through its
// textual delegation-file form before yielding it.
func (a *Archive) TextSource(r asn.RIR) Source {
	return &textSource{a: a, rir: r, day: dates.Max(firstRegular[r], a.start)}
}

func (s *textSource) Registry() asn.RIR { return s.rir }

func (s *textSource) Next() (Snapshot, bool) {
	_, end := s.a.Window()
	if s.day > end {
		return Snapshot{}, false
	}
	d := s.day
	s.day = s.day.AddDays(1)
	snap := Snapshot{Day: d}
	snap.Regular, snap.RegularCorrupt = s.roundTrip(d, false)
	snap.Extended, snap.ExtendedCorrupt = s.roundTrip(d, true)
	return snap, true
}

// roundTrip yields the day's file after the text round trip; corrupt
// reports a file that existed but did not survive parsing.
func (s *textSource) roundTrip(d dates.Day, extended bool) (f *delegation.File, corrupt bool) {
	switch s.a.Status(s.rir, d, extended) {
	case FileAbsent:
		return nil, false
	case FileCorrupt:
		// Corrupt files exist on disk but do not survive parsing; the
		// pipeline treats them like missing days while counting them as
		// corrupt retrievals.
		f, _ := s.parser.ParseLenient(s.a.CorruptBytes(s.rir, d, extended))
		if f != nil && len(f.ASNs) > 0 {
			return f, false
		}
		return nil, true
	}
	f = s.a.buildFileScratch(s.rir, d, extended, &s.scratch)
	parsed, _ := s.parser.ParseLenient(s.rend.Render(f))
	return parsed, parsed == nil
}

// CorruptBytes renders the mangled content of a corrupt file day: a
// truncated file with a broken header, as found in real archives.
func (a *Archive) CorruptBytes(r asn.RIR, d dates.Day, extended bool) []byte {
	f := a.buildFile(r, d, extended)
	if f == nil {
		return nil
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return nil
	}
	b := buf.Bytes()
	// Chop the file mid-line and damage the header's field separators.
	if len(b) > 40 {
		b = b[:len(b)/3]
	}
	for i := 0; i < len(b) && i < 30; i++ {
		if b[i] == '|' {
			b[i] = '&'
		}
	}
	return b
}

// FileCount returns the number of days with at least one retrievable
// (even if corrupt) delegation file for the registry — the archive
// inventory reported in Table 1.
func (a *Archive) FileCount(r asn.RIR) int {
	n := 0
	for d := firstRegular[r]; d <= a.end; d = d.AddDays(1) {
		if a.Status(r, d, false) != FileAbsent || a.Status(r, d, true) != FileAbsent {
			n++
		}
	}
	return n
}
