module parallellives

go 1.22
